//! The paper's evaluation datasets, as synthetic builders.
//!
//! Section 5.1 of the paper evaluates on:
//!
//! * **Distribution-1/2/3** — uniform input/output ranges
//!   32–4k / 2k–4k (decode-heavy), 3k–5k / 3k–5k (balanced) and
//!   2k–4k / 32–4k (prefill-heavy). These are specified exactly and need no
//!   approximation.
//! * **ShareGPT** — human chat; short-to-medium prompts and answers. We use
//!   the well-known log-normal shape, capped at 2048 new tokens as in the
//!   paper's end-to-end experiment.
//! * **ShareGPT-o1** — ShareGPT questions answered by a chain-of-thought
//!   model (avg input ≈ 381, avg output ≈ 2160 per Figure 7). Log-normal
//!   with a long-output mode.
//! * **TextVQA** — multimodal VQA: a fixed vision-token prefix per image
//!   (256 for Qwen-VL-Chat, 576 for LLaVA-1.5) plus a short question and a
//!   short answer.
//! * **Mixed-phase** — ShareGPT-o1 ∥ D1 ∥ D2 ∥ D3 concatenated, the
//!   varying-load workload of Figure 8.

use rand::Rng;

use crate::request::RequestSpec;
use crate::rng::{derive_seed, seeded};
use crate::sampler::LengthSampler;

/// Builds `n` requests by drawing input/output lengths from two samplers.
///
/// Output draws are clamped to `[1, max_new_tokens]` (a real engine stops at
/// the generation cap).
pub fn from_samplers(
    n: usize,
    seed: u64,
    input: &LengthSampler,
    output: &LengthSampler,
    max_new_tokens: u32,
) -> Vec<RequestSpec> {
    let mut in_rng = seeded(derive_seed(seed, 0));
    let mut out_rng = seeded(derive_seed(seed, 1));
    (0..n)
        .map(|i| {
            let input_len = input.sample(&mut in_rng);
            let output_len = output.sample(&mut out_rng).clamp(1, max_new_tokens);
            RequestSpec::new(i as u64, input_len, output_len, max_new_tokens)
        })
        .collect()
}

/// Distribution-1 (decode-heavy): input U\[32, 4096\], output U\[2048, 4096\].
pub fn distribution_1(n: usize, seed: u64) -> Vec<RequestSpec> {
    from_samplers(
        n,
        derive_seed(seed, 101),
        &LengthSampler::uniform(32, 4096),
        &LengthSampler::uniform(2048, 4096),
        4096,
    )
}

/// Distribution-2 (balanced): input U\[3072, 5120\], output U\[3072, 5120\].
pub fn distribution_2(n: usize, seed: u64) -> Vec<RequestSpec> {
    from_samplers(
        n,
        derive_seed(seed, 102),
        &LengthSampler::uniform(3072, 5120),
        &LengthSampler::uniform(3072, 5120),
        5120,
    )
}

/// Distribution-3 (prefill-heavy): input U\[2048, 4096\], output U\[32, 4096\].
pub fn distribution_3(n: usize, seed: u64) -> Vec<RequestSpec> {
    from_samplers(
        n,
        derive_seed(seed, 103),
        &LengthSampler::uniform(2048, 4096),
        &LengthSampler::uniform(32, 4096),
        4096,
    )
}

/// ShareGPT-like chat workload (used by the Figure 9 end-to-end comparison
/// with `max_new_tokens = 2048`).
pub fn sharegpt(n: usize, seed: u64) -> Vec<RequestSpec> {
    from_samplers(
        n,
        derive_seed(seed, 104),
        &LengthSampler::log_normal_median(230.0, 0.9, 4, 2048),
        &LengthSampler::log_normal_median(200.0, 1.0, 4, 2048),
        2048,
    )
}

/// ShareGPT-o1-like chain-of-thought workload (decode-heavy; Figure 7 top
/// row reports avg input 381, avg output 2160).
pub fn sharegpt_o1(n: usize, seed: u64) -> Vec<RequestSpec> {
    from_samplers(
        n,
        derive_seed(seed, 105),
        &LengthSampler::log_normal_median(300.0, 0.75, 16, 2048),
        &LengthSampler::log_normal_median(1750.0, 0.65, 64, 8192),
        8192,
    )
}

/// Short-chat workload used by the elastic-autoscaling and
/// disaggregation benches and their golden regression tests: input
/// U\[64, 256\], output U\[64, 384\] capped at 512.
///
/// This is deliberately the *one* definition of that workload — the
/// golden tolerance bands are pinned against these exact streams, so the
/// benches and the regression tests must not drift apart. Unlike the
/// other builders, the seed is passed straight through (no
/// `derive_seed`), preserving the streams the bands were measured on.
pub fn short_chat(n: usize, seed: u64) -> Vec<RequestSpec> {
    from_samplers(
        n,
        seed,
        &LengthSampler::uniform(64, 256),
        &LengthSampler::uniform(64, 384),
        512,
    )
}

/// Prefill-heavy chat workload (summarization / RAG-style): long prompts
/// drawn U\[1024, 3072\], terse answers U\[16, 96\] capped at 128.
///
/// This is the regime disaggregated prefill/decode serving targets — TTFT
/// is bound by prompt processing while the decode side barely loads — and
/// the load shape `bench --bin disagg` compares colocated and split pools
/// on.
pub fn prefill_heavy(n: usize, seed: u64) -> Vec<RequestSpec> {
    from_samplers(
        n,
        derive_seed(seed, 108),
        &LengthSampler::uniform(1024, 3072),
        &LengthSampler::uniform(16, 96),
        128,
    )
}

/// Parameters of the [`mixed_deadline`] builder.
#[derive(Debug, Clone, PartialEq)]
pub struct MixedDeadlineSpec {
    /// Fraction of requests that are tight-deadline interactive chat
    /// (the remainder is lax batch summarization).
    pub tight_frac: f64,
    /// Deadline attached to the chat class (time to first token before
    /// the client gives up).
    pub tight_deadline: pf_metrics::SimDuration,
    /// Deadline attached to the batch class.
    pub lax_deadline: pf_metrics::SimDuration,
    /// Chat prompt lengths.
    pub chat_input: LengthSampler,
    /// Chat answer lengths.
    pub chat_output: LengthSampler,
    /// Chat generation cap.
    pub chat_cap: u32,
    /// Summarization prompt lengths (long documents).
    pub batch_input: LengthSampler,
    /// Summarization answer lengths (terse summaries).
    pub batch_output: LengthSampler,
    /// Summarization generation cap.
    pub batch_cap: u32,
}

impl Default for MixedDeadlineSpec {
    /// 60% interactive chat under a 5-second first-token deadline, 40%
    /// document summarization under a lax 60-second one — the mix where
    /// FIFO admission lets one long document blow a handful of chat
    /// deadlines.
    fn default() -> Self {
        MixedDeadlineSpec {
            tight_frac: 0.6,
            tight_deadline: pf_metrics::SimDuration::from_secs(5),
            lax_deadline: pf_metrics::SimDuration::from_secs(60),
            chat_input: LengthSampler::uniform(64, 256),
            chat_output: LengthSampler::uniform(64, 256),
            chat_cap: 512,
            batch_input: LengthSampler::uniform(1024, 3072),
            batch_output: LengthSampler::uniform(16, 96),
            batch_cap: 128,
        }
    }
}

/// Mixed-deadline traffic: tight-deadline interactive chat interleaved
/// with lax batch summarization, every request carrying an explicit
/// [`RequestSpec::deadline`]. This is the workload slack-aware admission
/// ([`QueueOrder::LeastSlackFirst`] in `pf-sim`) targets — under FIFO a
/// chat request with 50 ms of slack waits behind a 3k-token document with
/// a minute to spare, and both classes miss.
///
/// The class of each request is an independent Bernoulli draw
/// ([`MixedDeadlineSpec::tight_frac`]), so the two streams interleave the
/// way a shared front end sees them. Ids are dense in emission order.
///
/// [`QueueOrder::LeastSlackFirst`]: https://docs.rs/pf-sim
pub fn mixed_deadline(n: usize, seed: u64) -> Vec<RequestSpec> {
    mixed_deadline_with(n, seed, &MixedDeadlineSpec::default())
}

/// [`mixed_deadline`] with explicit parameters.
///
/// # Panics
///
/// Panics if `tight_frac` is outside `[0, 1]` or either deadline is zero.
pub fn mixed_deadline_with(n: usize, seed: u64, spec: &MixedDeadlineSpec) -> Vec<RequestSpec> {
    assert!(
        (0.0..=1.0).contains(&spec.tight_frac),
        "tight fraction {} outside [0, 1]",
        spec.tight_frac
    );
    let base = derive_seed(seed, 111);
    let mut class_rng = seeded(derive_seed(base, 0));
    let mut in_rng = seeded(derive_seed(base, 1));
    let mut out_rng = seeded(derive_seed(base, 2));
    (0..n)
        .map(|i| {
            if class_rng.gen_bool(spec.tight_frac) {
                let input = spec.chat_input.sample(&mut in_rng);
                let output = spec
                    .chat_output
                    .sample(&mut out_rng)
                    .clamp(1, spec.chat_cap);
                RequestSpec::new(i as u64, input, output, spec.chat_cap)
                    .with_deadline(spec.tight_deadline)
            } else {
                let input = spec.batch_input.sample(&mut in_rng);
                let output = spec
                    .batch_output
                    .sample(&mut out_rng)
                    .clamp(1, spec.batch_cap);
                RequestSpec::new(i as u64, input, output, spec.batch_cap)
                    .with_deadline(spec.lax_deadline)
            }
        })
        .collect()
}

/// Parameters of the [`multi_turn_chat`] session builder.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTurnSpec {
    /// Tokens of the system prompt prepended to every session's first
    /// turn (part of the session prefix from turn two on).
    pub system_prompt_len: u32,
    /// Tokens of each new user message.
    pub user_turn: LengthSampler,
    /// Tokens of each assistant answer.
    pub assistant_turn: LengthSampler,
    /// Probability that a session continues after a turn (geometric
    /// session length with mean `1 / (1 - p)` turns).
    pub continue_prob: f64,
    /// Sessions interleaved round-robin at any moment — consecutive
    /// requests belong to different sessions, as a shared front end sees
    /// them.
    pub concurrent_sessions: usize,
    /// Generation cap per turn.
    pub max_new_tokens: u32,
    /// Conversations are force-ended once their token count would exceed
    /// this context budget (a real chat UI truncates or re-summarizes).
    pub max_context: u32,
}

impl Default for MultiTurnSpec {
    fn default() -> Self {
        MultiTurnSpec {
            system_prompt_len: 224,
            user_turn: LengthSampler::uniform(16, 128),
            assistant_turn: LengthSampler::uniform(32, 256),
            continue_prob: 0.72,
            concurrent_sessions: 8,
            max_new_tokens: 512,
            max_context: 3_072,
        }
    }
}

/// Multi-turn chat workload with shared-prefix structure — the traffic
/// shape KV-aware prefix-affinity routing targets.
///
/// Sessions have geometric length: after every turn the conversation
/// continues with probability [`MultiTurnSpec::continue_prob`]. Each
/// session's first turn carries the system prompt plus a user message
/// (`prefix_len = 0`: nothing of this session is cached anywhere yet);
/// every later turn repeats the full conversation so far — system prompt,
/// previous user messages and assistant answers — as its prefix, then
/// appends a fresh user message. All turns of one session declare the same
/// [`crate::PrefixId`], so a router can steer them to the instance that
/// still holds the conversation's KV. Sessions are interleaved round-robin
/// across [`MultiTurnSpec::concurrent_sessions`] slots, mimicking a front
/// end multiplexing many concurrent users.
pub fn multi_turn_chat(n: usize, seed: u64) -> Vec<RequestSpec> {
    multi_turn_chat_with(n, seed, &MultiTurnSpec::default())
}

/// [`multi_turn_chat`] with explicit parameters.
pub fn multi_turn_chat_with(n: usize, seed: u64, spec: &MultiTurnSpec) -> Vec<RequestSpec> {
    assert!(
        spec.concurrent_sessions > 0,
        "need at least one concurrent session"
    );
    assert!(
        (0.0..1.0).contains(&spec.continue_prob),
        "continue probability {} outside [0, 1)",
        spec.continue_prob
    );
    let base = derive_seed(seed, 109);
    let mut user_rng = seeded(derive_seed(base, 0));
    let mut out_rng = seeded(derive_seed(base, 1));
    let mut cont_rng = seeded(derive_seed(base, 2));
    /// One interleaving slot: the session currently owning it, if any.
    struct Slot {
        session: u64,
        /// Conversation tokens so far (inputs + outputs of past turns).
        conversation: u32,
    }
    let mut slots: Vec<Option<Slot>> = (0..spec.concurrent_sessions).map(|_| None).collect();
    let mut next_session = 0u64;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let slot = &mut slots[i % spec.concurrent_sessions];
        let (session, prefix_len) = match slot {
            Some(s) => (s.session, s.conversation),
            None => {
                let session = next_session;
                next_session += 1;
                *slot = Some(Slot {
                    session,
                    conversation: 0,
                });
                (session, 0)
            }
        };
        let fresh = if prefix_len == 0 {
            spec.system_prompt_len + spec.user_turn.sample(&mut user_rng)
        } else {
            spec.user_turn.sample(&mut user_rng)
        };
        let input_len = prefix_len + fresh;
        let output_len = spec
            .assistant_turn
            .sample(&mut out_rng)
            .clamp(1, spec.max_new_tokens);
        out.push(
            RequestSpec::new(i as u64, input_len, output_len, spec.max_new_tokens)
                .with_prefix(session, prefix_len),
        );
        let conversation = input_len + output_len;
        let continues = cont_rng.gen_bool(spec.continue_prob)
            && conversation + spec.user_turn.max_len() + spec.max_new_tokens <= spec.max_context;
        *slot = continues.then_some(Slot {
            session,
            conversation,
        });
    }
    out
}

/// Session-timed variant of [`multi_turn_chat`]: sessions *arrive* as a
/// Poisson process at `sessions_per_sec`, and each follow-up turn arrives
/// one think gap after the previous turn — `think_floor_secs` (covering
/// the assistant's response time plus a minimal read) plus an
/// exponentially distributed pause of mean `think_mean_secs`.
///
/// This is the closed-loop-per-session shape real chat traffic has: a
/// user cannot send turn *k + 1* before reading the answer to turn *k*.
/// An open-loop assignment (e.g. [`crate::PoissonArrivals`] over
/// [`multi_turn_chat`]'s output) breaks that causality at high rates —
/// follow-up turns arrive before their session's previous turn finished,
/// making prefix reuse physically impossible no matter how the router
/// behaves.
///
/// Returns `(requests, arrival_times)` sorted by arrival time, ids dense
/// in arrival order — ready for the cluster drivers.
///
/// # Panics
///
/// Panics if `sessions_per_sec` is not finite and positive, the think
/// parameters are negative, or `spec` violates [`multi_turn_chat_with`]'s
/// constraints.
pub fn multi_turn_chat_timed(
    n: usize,
    seed: u64,
    spec: &MultiTurnSpec,
    sessions_per_sec: f64,
    think_floor_secs: f64,
    think_mean_secs: f64,
) -> (Vec<RequestSpec>, Vec<pf_metrics::SimTime>) {
    assert!(
        sessions_per_sec.is_finite() && sessions_per_sec > 0.0,
        "invalid session rate {sessions_per_sec}"
    );
    assert!(
        think_floor_secs >= 0.0 && think_mean_secs >= 0.0,
        "negative think time"
    );
    assert!(
        (0.0..1.0).contains(&spec.continue_prob),
        "continue probability {} outside [0, 1)",
        spec.continue_prob
    );
    let base = derive_seed(seed, 110);
    let mut start_rng = seeded(derive_seed(base, 0));
    let mut user_rng = seeded(derive_seed(base, 1));
    let mut out_rng = seeded(derive_seed(base, 2));
    let mut cont_rng = seeded(derive_seed(base, 3));
    let mut think_rng = seeded(derive_seed(base, 4));
    // (arrival_us, session, turn, spec-without-id)
    let mut turns: Vec<(u64, u64, u32, u32, u32, u32)> = Vec::with_capacity(2 * n);
    let mut session_start = 0.0f64;
    let mut session = 0u64;
    while turns.len() < n {
        let u: f64 = start_rng.gen();
        session_start += -(1.0 - u).ln() / sessions_per_sec;
        let mut at = session_start;
        let mut conversation = 0u32;
        let mut turn = 0u32;
        loop {
            let fresh = if conversation == 0 {
                spec.system_prompt_len + spec.user_turn.sample(&mut user_rng)
            } else {
                spec.user_turn.sample(&mut user_rng)
            };
            let input_len = conversation + fresh;
            let output_len = spec
                .assistant_turn
                .sample(&mut out_rng)
                .clamp(1, spec.max_new_tokens);
            turns.push((
                (at * 1e6) as u64,
                session,
                turn,
                input_len,
                output_len,
                conversation,
            ));
            conversation = input_len + output_len;
            let continues = cont_rng.gen_bool(spec.continue_prob)
                && conversation + spec.user_turn.max_len() + spec.max_new_tokens
                    <= spec.max_context;
            if !continues {
                break;
            }
            let u: f64 = think_rng.gen();
            at += think_floor_secs - (1.0 - u).ln() * think_mean_secs;
            turn += 1;
        }
        session += 1;
    }
    // Interleave sessions by arrival; truncating to n may cut a session's
    // tail, which is fine (the user left).
    turns.sort_unstable_by_key(|&(at, session, turn, ..)| (at, session, turn));
    turns.truncate(n);
    let mut requests = Vec::with_capacity(n);
    let mut arrivals = Vec::with_capacity(n);
    for (i, (at_us, session, _, input_len, output_len, prefix_len)) in turns.into_iter().enumerate()
    {
        requests.push(
            RequestSpec::new(i as u64, input_len, output_len, spec.max_new_tokens)
                .with_prefix(session, prefix_len),
        );
        arrivals.push(pf_metrics::SimTime::from_micros(at_us));
    }
    (requests, arrivals)
}

/// Parameters of the [`shared_sysprompt_chat`] tenant-traffic builder.
#[derive(Debug, Clone, PartialEq)]
pub struct SharedSyspromptSpec {
    /// Distinct tenants; each owns one shared system prompt and sessions
    /// are assigned to tenants uniformly at random.
    pub tenants: usize,
    /// Tokens of every tenant's system prompt. This leading span is
    /// *identical across all sessions of the tenant* — the cross-session
    /// reuse whole-prefix caching cannot express — so it should dominate
    /// the first-turn prompt for the effect to matter.
    pub system_prompt_len: u32,
    /// Turn shape of the sessions (its `system_prompt_len` is replaced by
    /// the tenant prompt above).
    pub chat: MultiTurnSpec,
}

impl Default for SharedSyspromptSpec {
    fn default() -> Self {
        SharedSyspromptSpec {
            tenants: 4,
            system_prompt_len: 512,
            chat: MultiTurnSpec {
                // Shorter sessions than plain multi-turn chat: every
                // session *start* pays the (long) system prompt, which is
                // exactly the traffic block-granular sharing targets.
                continue_prob: 0.55,
                ..MultiTurnSpec::default()
            },
        }
    }
}

/// Multi-tenant chat where sessions of one tenant share a long system
/// prompt: the cross-session variant of [`multi_turn_chat`].
///
/// Every session carries its own [`crate::PrefixId`] (turn *k + 1*
/// repeats the conversation of turn *k*, as in [`multi_turn_chat`]), and
/// additionally declares its tenant's `system_prompt_id` over the first
/// [`SharedSyspromptSpec::system_prompt_len`] prompt tokens. Whole-prefix
/// caching sees nothing reusable on a session's first turn; block-granular
/// caching reuses the tenant's system-prompt blocks stored by *other*
/// sessions ([`crate::RequestSpec::matchable_blocks`]).
///
/// Sessions are interleaved round-robin across
/// [`MultiTurnSpec::concurrent_sessions`] slots, as in [`multi_turn_chat`].
pub fn shared_sysprompt_chat(n: usize, seed: u64, spec: &SharedSyspromptSpec) -> Vec<RequestSpec> {
    assert!(spec.tenants > 0, "need at least one tenant");
    let chat = &spec.chat;
    assert!(
        chat.concurrent_sessions > 0,
        "need at least one concurrent session"
    );
    assert!(
        (0.0..1.0).contains(&chat.continue_prob),
        "continue probability {} outside [0, 1)",
        chat.continue_prob
    );
    let base = derive_seed(seed, 112);
    let mut user_rng = seeded(derive_seed(base, 0));
    let mut out_rng = seeded(derive_seed(base, 1));
    let mut cont_rng = seeded(derive_seed(base, 2));
    let mut tenant_rng = seeded(derive_seed(base, 3));
    struct Slot {
        session: u64,
        tenant: u64,
        conversation: u32,
    }
    let mut slots: Vec<Option<Slot>> = (0..chat.concurrent_sessions).map(|_| None).collect();
    let mut next_session = 0u64;
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let slot = &mut slots[i % chat.concurrent_sessions];
        let (session, tenant, prefix_len) = match slot {
            Some(s) => (s.session, s.tenant, s.conversation),
            None => {
                let session = next_session;
                next_session += 1;
                let tenant = tenant_rng.gen_range(0..spec.tenants as u64);
                *slot = Some(Slot {
                    session,
                    tenant,
                    conversation: 0,
                });
                (session, tenant, 0)
            }
        };
        let fresh = if prefix_len == 0 {
            spec.system_prompt_len + chat.user_turn.sample(&mut user_rng)
        } else {
            chat.user_turn.sample(&mut user_rng)
        };
        let input_len = prefix_len + fresh;
        let output_len = chat
            .assistant_turn
            .sample(&mut out_rng)
            .clamp(1, chat.max_new_tokens);
        out.push(
            RequestSpec::new(i as u64, input_len, output_len, chat.max_new_tokens)
                .with_prefix(session, prefix_len)
                .with_system_prompt(tenant, spec.system_prompt_len),
        );
        let conversation = input_len + output_len;
        let continues = cont_rng.gen_bool(chat.continue_prob)
            && conversation + chat.user_turn.max_len() + chat.max_new_tokens <= chat.max_context;
        *slot = continues.then_some(Slot {
            session,
            tenant,
            conversation,
        });
    }
    out
}

/// Session-timed variant of [`shared_sysprompt_chat`]: sessions arrive
/// Poisson at `sessions_per_sec` and follow-up turns wait one think gap,
/// exactly as in [`multi_turn_chat_timed`]. Returns
/// `(requests, arrival_times)` sorted by arrival, ids dense in arrival
/// order.
///
/// # Panics
///
/// Panics on the same invalid rates/think parameters as
/// [`multi_turn_chat_timed`], or if `spec.tenants` is zero.
pub fn shared_sysprompt_chat_timed(
    n: usize,
    seed: u64,
    spec: &SharedSyspromptSpec,
    sessions_per_sec: f64,
    think_floor_secs: f64,
    think_mean_secs: f64,
) -> (Vec<RequestSpec>, Vec<pf_metrics::SimTime>) {
    assert!(spec.tenants > 0, "need at least one tenant");
    assert!(
        sessions_per_sec.is_finite() && sessions_per_sec > 0.0,
        "invalid session rate {sessions_per_sec}"
    );
    assert!(
        think_floor_secs >= 0.0 && think_mean_secs >= 0.0,
        "negative think time"
    );
    let chat = &spec.chat;
    assert!(
        (0.0..1.0).contains(&chat.continue_prob),
        "continue probability {} outside [0, 1)",
        chat.continue_prob
    );
    let base = derive_seed(seed, 113);
    let mut start_rng = seeded(derive_seed(base, 0));
    let mut user_rng = seeded(derive_seed(base, 1));
    let mut out_rng = seeded(derive_seed(base, 2));
    let mut cont_rng = seeded(derive_seed(base, 3));
    let mut think_rng = seeded(derive_seed(base, 4));
    let mut tenant_rng = seeded(derive_seed(base, 5));
    // (arrival_us, session, turn, input_len, output_len, prefix_len, tenant)
    #[allow(clippy::type_complexity)]
    let mut turns: Vec<(u64, u64, u32, u32, u32, u32, u64)> = Vec::with_capacity(2 * n);
    let mut session_start = 0.0f64;
    let mut session = 0u64;
    while turns.len() < n {
        let u: f64 = start_rng.gen();
        session_start += -(1.0 - u).ln() / sessions_per_sec;
        let tenant = tenant_rng.gen_range(0..spec.tenants as u64);
        let mut at = session_start;
        let mut conversation = 0u32;
        let mut turn = 0u32;
        loop {
            let fresh = if conversation == 0 {
                spec.system_prompt_len + chat.user_turn.sample(&mut user_rng)
            } else {
                chat.user_turn.sample(&mut user_rng)
            };
            let input_len = conversation + fresh;
            let output_len = chat
                .assistant_turn
                .sample(&mut out_rng)
                .clamp(1, chat.max_new_tokens);
            turns.push((
                (at * 1e6) as u64,
                session,
                turn,
                input_len,
                output_len,
                conversation,
                tenant,
            ));
            conversation = input_len + output_len;
            let continues = cont_rng.gen_bool(chat.continue_prob)
                && conversation + chat.user_turn.max_len() + chat.max_new_tokens
                    <= chat.max_context;
            if !continues {
                break;
            }
            let u: f64 = think_rng.gen();
            at += think_floor_secs - (1.0 - u).ln() * think_mean_secs;
            turn += 1;
        }
        session += 1;
    }
    turns.sort_unstable_by_key(|&(at, session, turn, ..)| (at, session, turn));
    turns.truncate(n);
    let mut requests = Vec::with_capacity(n);
    let mut arrivals = Vec::with_capacity(n);
    for (i, (at_us, session, _, input_len, output_len, prefix_len, tenant)) in
        turns.into_iter().enumerate()
    {
        requests.push(
            RequestSpec::new(i as u64, input_len, output_len, chat.max_new_tokens)
                .with_prefix(session, prefix_len)
                .with_system_prompt(tenant, spec.system_prompt_len),
        );
        arrivals.push(pf_metrics::SimTime::from_micros(at_us));
    }
    (requests, arrivals)
}

/// TextVQA-like multimodal workload for Qwen-VL-Chat (256 vision tokens per
/// image).
pub fn textvqa_qwen_vl(n: usize, seed: u64) -> Vec<RequestSpec> {
    multimodal(n, derive_seed(seed, 106), 256)
}

/// TextVQA-like multimodal workload for LLaVA-1.5 (576 vision tokens per
/// image).
pub fn textvqa_llava(n: usize, seed: u64) -> Vec<RequestSpec> {
    multimodal(n, derive_seed(seed, 107), 576)
}

fn multimodal(n: usize, seed: u64, image_tokens: u32) -> Vec<RequestSpec> {
    let question = LengthSampler::uniform(8, 60);
    let answer = LengthSampler::mixture(vec![
        // Most VQA answers are a few tokens; a minority explain at length.
        (0.8, LengthSampler::uniform(2, 20)),
        (0.2, LengthSampler::uniform(20, 160)),
    ]);
    let max_new_tokens = 256;
    let mut q_rng = seeded(derive_seed(seed, 0));
    let mut a_rng = seeded(derive_seed(seed, 1));
    (0..n)
        .map(|i| {
            let text = question.sample(&mut q_rng);
            let output = answer.sample(&mut a_rng).clamp(1, max_new_tokens);
            RequestSpec::new_multimodal(
                i as u64,
                image_tokens + text,
                image_tokens,
                output,
                max_new_tokens,
            )
        })
        .collect()
}

/// The Figure 8 varying-load workload: ShareGPT-o1 followed by
/// Distribution-1, -2 and -3, re-identified sequentially.
pub fn mixed_phase(n_per_phase: usize, seed: u64) -> Vec<RequestSpec> {
    let phases = [
        sharegpt_o1(n_per_phase, derive_seed(seed, 1)),
        distribution_1(n_per_phase, derive_seed(seed, 2)),
        distribution_2(n_per_phase, derive_seed(seed, 3)),
        distribution_3(n_per_phase, derive_seed(seed, 4)),
    ];
    let mut out = Vec::with_capacity(n_per_phase * 4);
    for phase in phases {
        for mut request in phase {
            request.id = (out.len() as u64).into();
            out.push(request);
        }
    }
    out
}

/// Draws a random subset used for quick smoke runs (keeps order, thins
/// uniformly).
pub fn thin<R: Rng + ?Sized>(
    requests: &[RequestSpec],
    keep: usize,
    rng: &mut R,
) -> Vec<RequestSpec> {
    if keep >= requests.len() {
        return requests.to_vec();
    }
    let mut picked: Vec<usize> = rand::seq::index::sample(rng, requests.len(), keep).into_vec();
    picked.sort_unstable();
    picked
        .into_iter()
        .enumerate()
        .map(|(new_id, idx)| {
            let mut r = requests[idx];
            r.id = (new_id as u64).into();
            r
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mean_of(values: impl Iterator<Item = u32>) -> f64 {
        let v: Vec<f64> = values.map(f64::from).collect();
        v.iter().sum::<f64>() / v.len() as f64
    }

    #[test]
    fn distribution_bounds_match_paper() {
        let d1 = distribution_1(500, 1);
        assert!(d1.iter().all(|r| (32..=4096).contains(&r.input_len)));
        assert!(d1
            .iter()
            .all(|r| (2048..=4096).contains(&r.true_output_len)));
        let d2 = distribution_2(500, 1);
        assert!(d2.iter().all(|r| (3072..=5120).contains(&r.input_len)));
        assert!(d2
            .iter()
            .all(|r| (3072..=5120).contains(&r.true_output_len)));
        let d3 = distribution_3(500, 1);
        assert!(d3.iter().all(|r| (2048..=4096).contains(&r.input_len)));
        assert!(d3.iter().all(|r| (32..=4096).contains(&r.true_output_len)));
    }

    #[test]
    fn d1_is_decode_heavy_d3_is_prefill_heavy() {
        let d1 = distribution_1(2000, 2);
        let d3 = distribution_3(2000, 2);
        let d1_in = mean_of(d1.iter().map(|r| r.input_len));
        let d1_out = mean_of(d1.iter().map(|r| r.true_output_len));
        let d3_in = mean_of(d3.iter().map(|r| r.input_len));
        let d3_out = mean_of(d3.iter().map(|r| r.true_output_len));
        assert!(d1_out > d1_in, "D1 must be decode-heavy");
        assert!(d3_in > d3_out, "D3 must be prefill-heavy");
    }

    #[test]
    fn sharegpt_o1_matches_reported_averages() {
        // Figure 7: avg input 381, avg output 2160. Allow 15% tolerance for
        // the synthetic stand-in.
        let reqs = sharegpt_o1(20_000, 3);
        let avg_in = mean_of(reqs.iter().map(|r| r.input_len));
        let avg_out = mean_of(reqs.iter().map(|r| r.true_output_len));
        assert!(
            (avg_in - 381.0).abs() / 381.0 < 0.15,
            "avg input {avg_in} too far from 381"
        );
        assert!(
            (avg_out - 2160.0).abs() / 2160.0 < 0.15,
            "avg output {avg_out} too far from 2160"
        );
    }

    #[test]
    fn prefill_heavy_is_prefill_heavy() {
        let reqs = prefill_heavy(1000, 7);
        assert!(reqs.iter().all(|r| (1024..=3072).contains(&r.input_len)));
        assert!(reqs.iter().all(|r| (16..=96).contains(&r.true_output_len)));
        let mean_in = mean_of(reqs.iter().map(|r| r.input_len));
        let mean_out = mean_of(reqs.iter().map(|r| r.true_output_len));
        assert!(mean_in > 20.0 * mean_out, "prompts must dominate outputs");
    }

    #[test]
    fn sharegpt_respects_cap() {
        let reqs = sharegpt(2000, 4);
        assert!(reqs.iter().all(|r| r.true_output_len <= 2048));
        assert!(reqs.iter().all(|r| r.max_new_tokens == 2048));
    }

    #[test]
    fn multimodal_has_image_prefix() {
        let qwen = textvqa_qwen_vl(100, 5);
        assert!(qwen.iter().all(|r| r.image_tokens == 256));
        assert!(qwen.iter().all(|r| r.input_len > 256));
        let llava = textvqa_llava(100, 5);
        assert!(llava.iter().all(|r| r.image_tokens == 576));
    }

    #[test]
    fn mixed_phase_concatenates_and_reids() {
        let m = mixed_phase(50, 6);
        assert_eq!(m.len(), 200);
        for (i, r) in m.iter().enumerate() {
            assert_eq!(r.id.raw(), i as u64);
        }
        // First phase decode-heavy (o1), last phase prefill-heavy (D3).
        let first = mean_of(m[..50].iter().map(|r| r.true_output_len));
        let last_in = mean_of(m[150..].iter().map(|r| r.input_len));
        let last_out = mean_of(m[150..].iter().map(|r| r.true_output_len));
        assert!(first > 1000.0);
        assert!(last_in > last_out);
    }

    #[test]
    fn mixed_deadline_interleaves_two_deadline_classes() {
        let spec = MixedDeadlineSpec::default();
        let reqs = mixed_deadline(400, 5);
        assert_eq!(reqs.len(), 400);
        let tight: Vec<&RequestSpec> = reqs
            .iter()
            .filter(|r| r.deadline == Some(spec.tight_deadline))
            .collect();
        let lax: Vec<&RequestSpec> = reqs
            .iter()
            .filter(|r| r.deadline == Some(spec.lax_deadline))
            .collect();
        assert_eq!(tight.len() + lax.len(), 400, "every request has a class");
        // Bernoulli(0.6) over 400 draws stays comfortably inside [0.4, 0.8].
        let frac = tight.len() as f64 / 400.0;
        assert!((0.4..=0.8).contains(&frac), "tight fraction {frac}");
        // Chat is short both ways; summarization is prompt-dominated.
        assert!(tight.iter().all(|r| (64..=256).contains(&r.input_len)));
        assert!(tight.iter().all(|r| r.max_new_tokens == spec.chat_cap));
        assert!(lax.iter().all(|r| (1024..=3072).contains(&r.input_len)));
        assert!(lax.iter().all(|r| (16..=96).contains(&r.true_output_len)));
        // Dense ids in emission order; deterministic.
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id.raw(), i as u64);
        }
        assert_eq!(mixed_deadline(400, 5), reqs);
        assert_ne!(mixed_deadline(400, 6), reqs);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn mixed_deadline_rejects_bad_fraction() {
        let spec = MixedDeadlineSpec {
            tight_frac: 1.5,
            ..MixedDeadlineSpec::default()
        };
        let _ = mixed_deadline_with(10, 1, &spec);
    }

    #[test]
    fn multi_turn_chat_builds_session_chains() {
        let spec = MultiTurnSpec::default();
        let reqs = multi_turn_chat(600, 1);
        assert_eq!(reqs.len(), 600);
        let mut turns: std::collections::HashMap<u64, Vec<&RequestSpec>> = Default::default();
        for r in &reqs {
            let prefix = r.prefix_id.expect("every chat request has a session");
            turns.entry(prefix.raw()).or_default().push(r);
        }
        assert!(turns.len() > 10, "expected many sessions");
        let mut multi_turn_sessions = 0;
        for session in turns.values() {
            // First turn: fresh conversation carrying the system prompt.
            assert_eq!(session[0].prefix_len, 0);
            assert!(session[0].input_len >= spec.system_prompt_len);
            let mut conversation = session[0].input_len + session[0].true_output_len;
            for turn in &session[1..] {
                multi_turn_sessions += 1;
                // Later turns repeat the exact conversation so far.
                assert_eq!(turn.prefix_len, conversation);
                assert!(turn.input_len > turn.prefix_len, "a fresh user message");
                conversation = turn.input_len + turn.true_output_len;
                // The force-end rule keeps continued conversations within
                // the context budget.
                assert!(
                    conversation <= spec.max_context,
                    "conversation {conversation} exceeds the context budget"
                );
            }
        }
        assert!(
            multi_turn_sessions > 100,
            "geometric sessions should yield many follow-up turns, got {multi_turn_sessions}"
        );
        // Request ids are dense and sequential (arrival order).
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id.raw(), i as u64);
        }
    }

    #[test]
    fn multi_turn_chat_interleaves_sessions() {
        let reqs = multi_turn_chat(64, 2);
        // Consecutive requests never belong to the same session: the
        // round-robin slots model a front end serving many users at once.
        for pair in reqs.windows(2) {
            assert_ne!(pair[0].prefix_id, pair[1].prefix_id);
        }
    }

    #[test]
    fn multi_turn_chat_timed_respects_session_causality() {
        let spec = MultiTurnSpec::default();
        let floor = 4.0;
        let (reqs, times) = multi_turn_chat_timed(500, 3, &spec, 2.0, floor, 6.0);
        assert_eq!(reqs.len(), 500);
        assert_eq!(times.len(), 500);
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "sorted arrivals");
        let mut last_turn: std::collections::HashMap<u64, (u32, pf_metrics::SimTime)> =
            Default::default();
        let mut follow_ups = 0;
        for (r, &at) in reqs.iter().zip(&times) {
            let session = r.prefix_id.expect("sessions everywhere").raw();
            match last_turn.get(&session) {
                None => assert_eq!(r.prefix_len, 0, "first turn of a session"),
                Some(&(conversation, prev_at)) => {
                    follow_ups += 1;
                    // The conversation chain is exact and the think gap
                    // keeps causality: a user answers only after the floor.
                    assert_eq!(r.prefix_len, conversation);
                    assert!(
                        (at - prev_at).as_secs_f64() >= floor - 1e-6,
                        "turn arrived {}s after its predecessor",
                        (at - prev_at).as_secs_f64()
                    );
                }
            }
            last_turn.insert(session, (r.input_len + r.true_output_len, at));
        }
        assert!(follow_ups > 150, "expected many follow-up turns");
        // Dense ids in arrival order; deterministic.
        for (i, r) in reqs.iter().enumerate() {
            assert_eq!(r.id.raw(), i as u64);
        }
        assert_eq!(
            multi_turn_chat_timed(500, 3, &spec, 2.0, floor, 6.0).0,
            reqs
        );
    }

    #[test]
    fn shared_sysprompt_chat_shares_tenant_prompts() {
        let spec = SharedSyspromptSpec::default();
        let reqs = shared_sysprompt_chat(400, 5, &spec);
        assert_eq!(reqs.len(), 400);
        let mut tenants = std::collections::HashSet::new();
        let mut session_tenant: std::collections::HashMap<u64, u64> = Default::default();
        for r in &reqs {
            let tenant = r.system_prompt_id.expect("every request has a tenant");
            assert!(tenant < spec.tenants as u64);
            assert_eq!(r.system_prompt_len, spec.system_prompt_len);
            assert!(r.system_prompt_len <= r.input_len);
            tenants.insert(tenant);
            // A session never switches tenants mid-conversation.
            let session = r.prefix_id.expect("sessions everywhere").raw();
            assert_eq!(*session_tenant.entry(session).or_insert(tenant), tenant);
        }
        assert!(tenants.len() > 1, "sessions spread over several tenants");
        // Cross-session sharing is real: two first-turn requests of the
        // same tenant produce identical matchable block chains.
        let firsts: Vec<&RequestSpec> = reqs
            .iter()
            .filter(|r| r.prefix_len == 0 && r.system_prompt_id == Some(0))
            .take(2)
            .collect();
        assert_eq!(firsts.len(), 2, "tenant 0 starts at least two sessions");
        let a: Vec<u64> = firsts[0].matchable_blocks(64).collect();
        let b: Vec<u64> = firsts[1].matchable_blocks(64).collect();
        assert_eq!(a, b);
        assert_eq!(a.len() as u32, spec.system_prompt_len / 64);
        // Determinism.
        assert_eq!(shared_sysprompt_chat(400, 5, &spec), reqs);
    }

    #[test]
    fn shared_sysprompt_chat_timed_keeps_causality_and_tenancy() {
        let spec = SharedSyspromptSpec::default();
        let (reqs, times) = shared_sysprompt_chat_timed(400, 7, &spec, 4.0, 2.0, 3.0);
        assert_eq!(reqs.len(), 400);
        assert!(times.windows(2).all(|w| w[0] <= w[1]), "sorted arrivals");
        let mut last_turn: std::collections::HashMap<u64, u32> = Default::default();
        for r in &reqs {
            let session = r.prefix_id.expect("sessions everywhere").raw();
            match last_turn.get(&session) {
                None => assert_eq!(r.prefix_len, 0),
                Some(&conversation) => assert_eq!(r.prefix_len, conversation),
            }
            last_turn.insert(session, r.input_len + r.true_output_len);
            assert!(r.system_prompt_id.is_some());
        }
        assert_eq!(
            shared_sysprompt_chat_timed(400, 7, &spec, 4.0, 2.0, 3.0).0,
            reqs
        );
    }

    #[test]
    fn multi_turn_chat_is_deterministic() {
        assert_eq!(multi_turn_chat(200, 9), multi_turn_chat(200, 9));
        assert_ne!(multi_turn_chat(200, 9), multi_turn_chat(200, 10));
    }

    #[test]
    fn builders_are_deterministic() {
        assert_eq!(distribution_1(50, 9), distribution_1(50, 9));
        assert_ne!(distribution_1(50, 9), distribution_1(50, 10));
    }

    #[test]
    fn thin_preserves_order_and_reids() {
        let reqs = distribution_1(100, 1);
        let mut rng = crate::rng::seeded(1);
        let thinned = thin(&reqs, 10, &mut rng);
        assert_eq!(thinned.len(), 10);
        for (i, r) in thinned.iter().enumerate() {
            assert_eq!(r.id.raw(), i as u64);
        }
        let full = thin(&reqs, 200, &mut rng);
        assert_eq!(full.len(), 100);
    }
}
