//! Request specifications.

use std::fmt;

use pf_metrics::SimDuration;

/// Opaque request identifier, unique within one workload/simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RequestId(pub u64);

impl RequestId {
    /// Raw numeric value (used as the KV-cache key).
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

impl From<u64> for RequestId {
    fn from(v: u64) -> Self {
        RequestId(v)
    }
}

/// Opaque identifier of a shared prompt prefix (a multi-turn session's
/// conversation, a shared system prompt). Requests declaring the same
/// prefix id repeat each other's leading prompt tokens, which a KV-aware
/// router can exploit by steering them to the instance that still caches
/// those tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PrefixId(pub u64);

impl PrefixId {
    /// Raw numeric value (used as the prefix-cache key).
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PrefixId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prefix#{}", self.0)
    }
}

impl From<u64> for PrefixId {
    fn from(v: u64) -> Self {
        PrefixId(v)
    }
}

/// Static description of one inference request.
///
/// `true_output_len` is simulation ground truth: the number of tokens the
/// model *will* generate before emitting EOS. Schedulers never see it (only
/// the [`OracleScheduler`] baseline does, via a dedicated oracle channel);
/// they see `max_new_tokens`, the user-configured generation cap.
///
/// [`OracleScheduler`]: https://docs.rs/pf-core
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RequestSpec {
    /// Unique id.
    pub id: RequestId,
    /// Prompt length in tokens, *including* any image tokens.
    pub input_len: u32,
    /// Ground-truth output length in tokens (EOS position).
    pub true_output_len: u32,
    /// User-configured generation cap (`max_new_tokens`).
    pub max_new_tokens: u32,
    /// Vision-encoder tokens contained in `input_len` (0 for text-only).
    pub image_tokens: u32,
    /// Shared prompt prefix this request extends (`None` for
    /// prefix-free traffic). After the request finishes, the serving
    /// instance holds the whole conversation's KV under this id.
    pub prefix_id: Option<PrefixId>,
    /// Leading prompt tokens (contained in `input_len`) that repeat the
    /// declared prefix — the part a prefix-cache hit can skip. Zero for
    /// the first request of a session (nothing cached yet).
    pub prefix_len: u32,
    /// Optional service deadline measured from arrival: a request still
    /// queued past this — waiting for its first token, or preempted and
    /// waiting for readmission — is cancelled by the serving engine. Its
    /// queue slot is reclaimed and it counts as `timed_out` in reports
    /// instead of completing. `None` waits forever.
    pub deadline: Option<SimDuration>,
}

impl RequestSpec {
    /// Creates a text-only request.
    ///
    /// # Panics
    ///
    /// Panics if `true_output_len` is zero or exceeds `max_new_tokens`.
    pub fn new(
        id: impl Into<RequestId>,
        input_len: u32,
        true_output_len: u32,
        max_new_tokens: u32,
    ) -> Self {
        assert!(
            true_output_len > 0,
            "a request must produce at least one token"
        );
        assert!(
            true_output_len <= max_new_tokens,
            "true output {true_output_len} exceeds max_new_tokens {max_new_tokens}"
        );
        RequestSpec {
            id: id.into(),
            input_len,
            true_output_len,
            max_new_tokens,
            image_tokens: 0,
            prefix_id: None,
            prefix_len: 0,
            deadline: None,
        }
    }

    /// Attaches a cancellation deadline: a request still queued
    /// `deadline` after arrival — never started, or preempted and not
    /// readmitted — is dropped by the serving engine (client gave up /
    /// gateway timeout).
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero (the request could never be served).
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        assert!(!deadline.is_zero(), "a zero deadline can never be met");
        self.deadline = Some(deadline);
        self
    }

    /// Declares the shared prefix this request extends: its first
    /// `prefix_len` prompt tokens repeat prefix `prefix_id` (session-chat
    /// builder; see [`crate::datasets::multi_turn_chat`]).
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > input_len` (the prefix is part of the
    /// prompt, not extra tokens).
    pub fn with_prefix(mut self, prefix_id: impl Into<PrefixId>, prefix_len: u32) -> Self {
        assert!(
            prefix_len <= self.input_len,
            "prefix length {prefix_len} exceeds input length {}",
            self.input_len
        );
        self.prefix_id = Some(prefix_id.into());
        self.prefix_len = prefix_len;
        self
    }

    /// Creates a multimodal request whose prompt embeds `image_tokens`
    /// vision tokens (already counted in `input_len`).
    ///
    /// # Panics
    ///
    /// Panics if `image_tokens > input_len` or the output constraints of
    /// [`RequestSpec::new`] are violated.
    pub fn new_multimodal(
        id: impl Into<RequestId>,
        input_len: u32,
        image_tokens: u32,
        true_output_len: u32,
        max_new_tokens: u32,
    ) -> Self {
        assert!(
            image_tokens <= input_len,
            "image tokens {image_tokens} exceed input length {input_len}"
        );
        let mut spec = RequestSpec::new(id, input_len, true_output_len, max_new_tokens);
        spec.image_tokens = image_tokens;
        spec
    }

    /// Ground-truth total KV footprint at completion (input + true output).
    pub fn true_total_len(&self) -> u32 {
        self.input_len + self.true_output_len
    }

    /// Worst-case total KV footprint (input + max_new_tokens) — what a
    /// conservative scheduler budgets for.
    pub fn max_total_len(&self) -> u32 {
        self.input_len + self.max_new_tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let r = RequestSpec::new(3u64, 100, 50, 512);
        assert_eq!(r.id, RequestId(3));
        assert_eq!(r.true_total_len(), 150);
        assert_eq!(r.max_total_len(), 612);
        assert_eq!(r.image_tokens, 0);
        assert_eq!(r.prefix_id, None);
        assert_eq!(r.prefix_len, 0);
        assert_eq!(r.deadline, None);
    }

    #[test]
    fn with_deadline_marks_cancellable() {
        let r = RequestSpec::new(3u64, 100, 50, 512).with_deadline(SimDuration::from_secs(30));
        assert_eq!(r.deadline, Some(SimDuration::from_secs(30)));
    }

    #[test]
    #[should_panic(expected = "zero deadline")]
    fn zero_deadline_rejected() {
        let _ = RequestSpec::new(1u64, 10, 5, 100).with_deadline(SimDuration::ZERO);
    }

    #[test]
    fn with_prefix_marks_session() {
        let r = RequestSpec::new(3u64, 100, 50, 512).with_prefix(7u64, 80);
        assert_eq!(r.prefix_id, Some(PrefixId(7)));
        assert_eq!(r.prefix_len, 80);
        assert_eq!(PrefixId(7).to_string(), "prefix#7");
        assert_eq!(PrefixId(7).raw(), 7);
    }

    #[test]
    #[should_panic(expected = "exceeds input length")]
    fn prefix_beyond_input_rejected() {
        let _ = RequestSpec::new(1u64, 10, 5, 100).with_prefix(1u64, 11);
    }

    #[test]
    fn multimodal_counts_image_tokens() {
        let r = RequestSpec::new_multimodal(1u64, 600, 576, 30, 256);
        assert_eq!(r.image_tokens, 576);
        assert_eq!(r.input_len, 600);
    }

    #[test]
    fn display_id() {
        assert_eq!(RequestId(9).to_string(), "req#9");
        assert_eq!(RequestId(9).raw(), 9);
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn zero_output_rejected() {
        let _ = RequestSpec::new(1u64, 10, 0, 100);
    }

    #[test]
    #[should_panic(expected = "exceeds max_new_tokens")]
    fn output_beyond_cap_rejected() {
        let _ = RequestSpec::new(1u64, 10, 200, 100);
    }

    #[test]
    #[should_panic(expected = "exceed input length")]
    fn image_tokens_beyond_input_rejected() {
        let _ = RequestSpec::new_multimodal(1u64, 100, 101, 10, 100);
    }
}
