//! Request specifications.

use std::fmt;

use pf_metrics::SimDuration;

/// Opaque request identifier, unique within one workload/simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RequestId(pub u64);

impl RequestId {
    /// Raw numeric value (used as the KV-cache key).
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for RequestId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "req#{}", self.0)
    }
}

impl From<u64> for RequestId {
    fn from(v: u64) -> Self {
        RequestId(v)
    }
}

/// Opaque identifier of a shared prompt prefix (a multi-turn session's
/// conversation, a shared system prompt). Requests declaring the same
/// prefix id repeat each other's leading prompt tokens, which a KV-aware
/// router can exploit by steering them to the instance that still caches
/// those tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PrefixId(pub u64);

impl PrefixId {
    /// Raw numeric value (used as the prefix-cache key).
    pub const fn raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for PrefixId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prefix#{}", self.0)
    }
}

impl From<u64> for PrefixId {
    fn from(v: u64) -> Self {
        PrefixId(v)
    }
}

/// Static description of one inference request.
///
/// `true_output_len` is simulation ground truth: the number of tokens the
/// model *will* generate before emitting EOS. Schedulers never see it (only
/// the [`OracleScheduler`] baseline does, via a dedicated oracle channel);
/// they see `max_new_tokens`, the user-configured generation cap.
///
/// [`OracleScheduler`]: https://docs.rs/pf-core
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RequestSpec {
    /// Unique id.
    pub id: RequestId,
    /// Prompt length in tokens, *including* any image tokens.
    pub input_len: u32,
    /// Ground-truth output length in tokens (EOS position).
    pub true_output_len: u32,
    /// User-configured generation cap (`max_new_tokens`).
    pub max_new_tokens: u32,
    /// Vision-encoder tokens contained in `input_len` (0 for text-only).
    pub image_tokens: u32,
    /// Shared prompt prefix this request extends (`None` for
    /// prefix-free traffic). After the request finishes, the serving
    /// instance holds the whole conversation's KV under this id.
    pub prefix_id: Option<PrefixId>,
    /// Leading prompt tokens (contained in `input_len`) that repeat the
    /// declared prefix — the part a prefix-cache hit can skip. Zero for
    /// the first request of a session (nothing cached yet).
    pub prefix_len: u32,
    /// Optional service deadline measured from arrival: a request still
    /// queued past this — waiting for its first token, or preempted and
    /// waiting for readmission — is cancelled by the serving engine. Its
    /// queue slot is reclaimed and it counts as `timed_out` in reports
    /// instead of completing. `None` waits forever.
    pub deadline: Option<SimDuration>,
    /// Shared system prompt (tenant identity) this request's leading
    /// tokens repeat, or `None` for tenant-free traffic. Unlike
    /// `prefix_id` — which names one session's conversation — every
    /// session of the same tenant shares this id, so block-granular
    /// caches can reuse the leading blocks *across* sessions.
    #[cfg_attr(feature = "serde", serde(default))]
    pub system_prompt_id: Option<u64>,
    /// Leading prompt tokens (contained in `input_len`, and in
    /// `prefix_len` once a session has history) occupied by the shared
    /// system prompt. Zero when `system_prompt_id` is `None`.
    #[cfg_attr(feature = "serde", serde(default))]
    pub system_prompt_len: u32,
}

impl RequestSpec {
    /// Creates a text-only request.
    ///
    /// # Panics
    ///
    /// Panics if `true_output_len` is zero or exceeds `max_new_tokens`.
    pub fn new(
        id: impl Into<RequestId>,
        input_len: u32,
        true_output_len: u32,
        max_new_tokens: u32,
    ) -> Self {
        assert!(
            true_output_len > 0,
            "a request must produce at least one token"
        );
        assert!(
            true_output_len <= max_new_tokens,
            "true output {true_output_len} exceeds max_new_tokens {max_new_tokens}"
        );
        RequestSpec {
            id: id.into(),
            input_len,
            true_output_len,
            max_new_tokens,
            image_tokens: 0,
            prefix_id: None,
            prefix_len: 0,
            deadline: None,
            system_prompt_id: None,
            system_prompt_len: 0,
        }
    }

    /// Attaches a cancellation deadline: a request still queued
    /// `deadline` after arrival — never started, or preempted and not
    /// readmitted — is dropped by the serving engine (client gave up /
    /// gateway timeout).
    ///
    /// # Panics
    ///
    /// Panics if `deadline` is zero (the request could never be served).
    pub fn with_deadline(mut self, deadline: SimDuration) -> Self {
        assert!(!deadline.is_zero(), "a zero deadline can never be met");
        self.deadline = Some(deadline);
        self
    }

    /// Declares the shared prefix this request extends: its first
    /// `prefix_len` prompt tokens repeat prefix `prefix_id` (session-chat
    /// builder; see [`crate::datasets::multi_turn_chat`]).
    ///
    /// # Panics
    ///
    /// Panics if `prefix_len > input_len` (the prefix is part of the
    /// prompt, not extra tokens).
    pub fn with_prefix(mut self, prefix_id: impl Into<PrefixId>, prefix_len: u32) -> Self {
        assert!(
            prefix_len <= self.input_len,
            "prefix length {prefix_len} exceeds input length {}",
            self.input_len
        );
        self.prefix_id = Some(prefix_id.into());
        self.prefix_len = prefix_len;
        self
    }

    /// Creates a multimodal request whose prompt embeds `image_tokens`
    /// vision tokens (already counted in `input_len`).
    ///
    /// # Panics
    ///
    /// Panics if `image_tokens > input_len` or the output constraints of
    /// [`RequestSpec::new`] are violated.
    pub fn new_multimodal(
        id: impl Into<RequestId>,
        input_len: u32,
        image_tokens: u32,
        true_output_len: u32,
        max_new_tokens: u32,
    ) -> Self {
        assert!(
            image_tokens <= input_len,
            "image tokens {image_tokens} exceed input length {input_len}"
        );
        let mut spec = RequestSpec::new(id, input_len, true_output_len, max_new_tokens);
        spec.image_tokens = image_tokens;
        spec
    }

    /// Declares the shared system prompt occupying this request's first
    /// `len` prompt tokens. All requests carrying the same
    /// `system_prompt_id` (across sessions and tenants' users alike)
    /// share those leading tokens verbatim, which block-granular KV
    /// caches exploit even when the sessions themselves are unrelated.
    ///
    /// # Panics
    ///
    /// Panics if `len > input_len`.
    pub fn with_system_prompt(mut self, system_prompt_id: u64, len: u32) -> Self {
        assert!(
            len <= self.input_len,
            "system prompt length {len} exceeds input length {}",
            self.input_len
        );
        self.system_prompt_id = Some(system_prompt_id);
        self.system_prompt_len = len;
        self
    }

    /// Ground-truth total KV footprint at completion (input + true output).
    pub fn true_total_len(&self) -> u32 {
        self.input_len + self.true_output_len
    }

    /// Worst-case total KV footprint (input + max_new_tokens) — what a
    /// conservative scheduler budgets for.
    pub fn max_total_len(&self) -> u32 {
        self.input_len + self.max_new_tokens
    }

    /// Leading prompt tokens whose content is *predictable at routing
    /// time* from the request's declared identities: the shared system
    /// prompt plus, for session traffic, the repeated conversation
    /// history. Tokens past this (this turn's fresh user text) cannot be
    /// cached anywhere yet.
    pub fn matchable_shared_len(&self) -> u64 {
        let mut len = 0u32;
        if self.system_prompt_id.is_some() {
            len = self.system_prompt_len;
        }
        if self.prefix_id.is_some() {
            len = len.max(self.prefix_len);
        }
        u64::from(len.min(self.input_len))
    }

    /// Leading tokens of the *finished* conversation (after `generated`
    /// output tokens) whose content the serving instance now holds and a
    /// future request could repeat: the whole conversation for session
    /// traffic, the system prompt alone for sessionless tenant traffic.
    pub fn storable_shared_len(&self, generated: u32) -> u64 {
        if self.prefix_id.is_some() {
            u64::from(self.input_len) + u64::from(generated)
        } else if self.system_prompt_id.is_some() {
            u64::from(self.system_prompt_len)
        } else {
            0
        }
    }

    /// Content word of shared block `index` (spanning token positions
    /// `[index * block_tokens, (index + 1) * block_tokens)`), or `None`
    /// when the block is not fully inside the first `shared_len` tokens
    /// or carries no shareable identity. Blocks fully inside the system
    /// prompt derive from `(system_prompt_id, index)` — identical across
    /// every session of the tenant — and later blocks derive from
    /// `(prefix_id, index)`, identical across the turns of one session.
    fn shared_block_content(&self, index: u64, block_tokens: u32, shared_len: u64) -> Option<u64> {
        const SYS_BLOCK_TAG: u64 = 0x5359_5350_524f_4d50;
        const SESSION_BLOCK_TAG: u64 = 0x5345_5353_494f_4e21;
        let end = (index + 1) * u64::from(block_tokens);
        if end > shared_len {
            return None;
        }
        if end <= u64::from(self.system_prompt_len) {
            if let Some(sp) = self.system_prompt_id {
                return Some(crate::rng::derive_seed(
                    crate::rng::derive_seed(SYS_BLOCK_TAG, sp),
                    index,
                ));
            }
        }
        let prefix = self.prefix_id?;
        Some(crate::rng::derive_seed(
            crate::rng::derive_seed(SESSION_BLOCK_TAG, prefix.raw()),
            index,
        ))
    }

    /// Content words of the complete shared blocks coverable at routing
    /// and admission time (see
    /// [`matchable_shared_len`](RequestSpec::matchable_shared_len)), in
    /// prompt order. Chaining these through `pf_kvcache::block_hash`
    /// yields the block hashes a KV-aware router probes.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is zero.
    pub fn matchable_blocks(&self, block_tokens: u32) -> SharedBlocks<'_> {
        assert!(block_tokens > 0, "block size must be positive");
        SharedBlocks {
            spec: self,
            block_tokens,
            shared_len: self.matchable_shared_len(),
            next: 0,
        }
    }

    /// Content words of the complete shared blocks the serving instance
    /// holds once the request finished with `generated` output tokens
    /// (see [`storable_shared_len`](RequestSpec::storable_shared_len)).
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is zero.
    pub fn storable_blocks(&self, block_tokens: u32, generated: u32) -> SharedBlocks<'_> {
        assert!(block_tokens > 0, "block size must be positive");
        SharedBlocks {
            spec: self,
            block_tokens,
            shared_len: self.storable_shared_len(generated),
            next: 0,
        }
    }
}

/// Iterator over the content words of a request's shared token blocks
/// (see [`RequestSpec::matchable_blocks`]). Allocation-free, so routers
/// and engines can walk block chains on their hot paths.
#[derive(Debug, Clone)]
pub struct SharedBlocks<'a> {
    spec: &'a RequestSpec,
    block_tokens: u32,
    shared_len: u64,
    next: u64,
}

impl Iterator for SharedBlocks<'_> {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        let content =
            self.spec
                .shared_block_content(self.next, self.block_tokens, self.shared_len)?;
        self.next += 1;
        Some(content)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals() {
        let r = RequestSpec::new(3u64, 100, 50, 512);
        assert_eq!(r.id, RequestId(3));
        assert_eq!(r.true_total_len(), 150);
        assert_eq!(r.max_total_len(), 612);
        assert_eq!(r.image_tokens, 0);
        assert_eq!(r.prefix_id, None);
        assert_eq!(r.prefix_len, 0);
        assert_eq!(r.deadline, None);
    }

    #[test]
    fn with_deadline_marks_cancellable() {
        let r = RequestSpec::new(3u64, 100, 50, 512).with_deadline(SimDuration::from_secs(30));
        assert_eq!(r.deadline, Some(SimDuration::from_secs(30)));
    }

    #[test]
    #[should_panic(expected = "zero deadline")]
    fn zero_deadline_rejected() {
        let _ = RequestSpec::new(1u64, 10, 5, 100).with_deadline(SimDuration::ZERO);
    }

    #[test]
    fn with_prefix_marks_session() {
        let r = RequestSpec::new(3u64, 100, 50, 512).with_prefix(7u64, 80);
        assert_eq!(r.prefix_id, Some(PrefixId(7)));
        assert_eq!(r.prefix_len, 80);
        assert_eq!(PrefixId(7).to_string(), "prefix#7");
        assert_eq!(PrefixId(7).raw(), 7);
    }

    #[test]
    #[should_panic(expected = "exceeds input length")]
    fn prefix_beyond_input_rejected() {
        let _ = RequestSpec::new(1u64, 10, 5, 100).with_prefix(1u64, 11);
    }

    #[test]
    fn multimodal_counts_image_tokens() {
        let r = RequestSpec::new_multimodal(1u64, 600, 576, 30, 256);
        assert_eq!(r.image_tokens, 576);
        assert_eq!(r.input_len, 600);
    }

    #[test]
    fn shared_blocks_match_across_sessions_and_turns() {
        let block = 16;
        // Two first-turn sessions of the same tenant (64-token system
        // prompt): their matchable blocks are exactly the system prompt
        // and identical, despite distinct sessions.
        let a = RequestSpec::new(1u64, 100, 20, 64)
            .with_system_prompt(9, 64)
            .with_prefix(100u64, 0);
        let b = RequestSpec::new(2u64, 120, 20, 64)
            .with_system_prompt(9, 64)
            .with_prefix(200u64, 0);
        let a_blocks: Vec<u64> = a.matchable_blocks(block).collect();
        let b_blocks: Vec<u64> = b.matchable_blocks(block).collect();
        assert_eq!(a_blocks.len(), 4);
        assert_eq!(a_blocks, b_blocks);
        // The finished first turn stores the whole conversation; the
        // second turn of the same session matches it bit for bit.
        let stored: Vec<u64> = a.storable_blocks(block, 20).collect();
        assert_eq!(stored.len(), 7, "120-token conversation, complete blocks");
        assert_eq!(stored[..4], a_blocks[..]);
        let t2 = RequestSpec::new(3u64, 160, 20, 64)
            .with_system_prompt(9, 64)
            .with_prefix(100u64, 120);
        let matchable: Vec<u64> = t2.matchable_blocks(block).collect();
        assert_eq!(matchable, stored);
        // A different tenant diverges on the very first block.
        let c = RequestSpec::new(4u64, 100, 20, 64).with_system_prompt(8, 64);
        assert_ne!(c.matchable_blocks(block).next(), a_blocks.first().copied());
        // Sessionless tenant traffic stores only the system prompt.
        assert_eq!(c.storable_blocks(block, 50).count(), 4);
        // Prefix-free, tenant-free traffic shares nothing.
        let plain = RequestSpec::new(5u64, 100, 20, 64);
        assert_eq!(plain.matchable_blocks(block).count(), 0);
        assert_eq!(plain.storable_blocks(block, 50).count(), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds input length")]
    fn system_prompt_beyond_input_rejected() {
        let _ = RequestSpec::new(1u64, 10, 5, 100).with_system_prompt(1, 11);
    }

    #[test]
    fn display_id() {
        assert_eq!(RequestId(9).to_string(), "req#9");
        assert_eq!(RequestId(9).raw(), 9);
    }

    #[test]
    #[should_panic(expected = "at least one token")]
    fn zero_output_rejected() {
        let _ = RequestSpec::new(1u64, 10, 0, 100);
    }

    #[test]
    #[should_panic(expected = "exceeds max_new_tokens")]
    fn output_beyond_cap_rejected() {
        let _ = RequestSpec::new(1u64, 10, 200, 100);
    }

    #[test]
    #[should_panic(expected = "exceed input length")]
    fn image_tokens_beyond_input_rejected() {
        let _ = RequestSpec::new_multimodal(1u64, 100, 101, 10, 100);
    }
}
