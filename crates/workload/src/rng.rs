//! Deterministic RNG helpers.
//!
//! Every stochastic component in the workspace derives its generator from an
//! explicit `u64` seed so that whole experiments replay bit-for-bit. When a
//! component needs several independent streams (e.g. input lengths vs.
//! output lengths), it derives per-stream seeds with [`derive_seed`] instead
//! of sharing one generator, so that adding a consumer never perturbs the
//! others.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Creates a seeded standard RNG.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives an independent stream seed from a base seed and a stream index
/// using the SplitMix64 finalizer (good avalanche, cheap, stable across
/// platforms).
pub fn derive_seed(base: u64, stream: u64) -> u64 {
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(stream.wrapping_add(1)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_is_deterministic() {
        let a: u64 = seeded(7).gen();
        let b: u64 = seeded(7).gen();
        assert_eq!(a, b);
        let c: u64 = seeded(8).gen();
        assert_ne!(a, c);
    }

    #[test]
    fn derived_streams_differ() {
        let s0 = derive_seed(42, 0);
        let s1 = derive_seed(42, 1);
        let s2 = derive_seed(43, 0);
        assert_ne!(s0, s1);
        assert_ne!(s0, s2);
        // Stable values (guard against accidental algorithm changes that
        // would silently invalidate recorded experiment outputs).
        assert_eq!(derive_seed(0, 0), derive_seed(0, 0));
    }

    #[test]
    fn derive_avalanches_small_changes() {
        let a = derive_seed(1, 0);
        let b = derive_seed(2, 0);
        assert!((a ^ b).count_ones() > 10, "poor diffusion: {a:x} vs {b:x}");
    }
}
