//! Token-length distributions.
//!
//! `rand_distr` is intentionally not a dependency; the log-normal and
//! exponential samplers below are implemented from first principles
//! (Box–Muller transform, inverse-CDF) and property-tested.

use rand::Rng;

/// A distribution over token lengths.
///
/// All samplers clamp to a `[min, max]` token range, because real serving
/// systems cap both prompt and generation lengths.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LengthSampler {
    /// Always the same length.
    Fixed(u32),
    /// Uniform over the inclusive range `[lo, hi]`.
    UniformRange {
        /// Lower bound (inclusive).
        lo: u32,
        /// Upper bound (inclusive).
        hi: u32,
    },
    /// Log-normal: `exp(mu + sigma * Z)` clamped to `[min, max]`.
    LogNormal {
        /// Mean of the underlying normal (log scale).
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
        /// Lower clamp (inclusive).
        min: u32,
        /// Upper clamp (inclusive).
        max: u32,
    },
    /// Exponential with the given mean, clamped to `[min, max]`.
    Exponential {
        /// Mean of the (unclamped) exponential.
        mean: f64,
        /// Lower clamp (inclusive).
        min: u32,
        /// Upper clamp (inclusive).
        max: u32,
    },
    /// Weighted mixture of samplers. Weights need not sum to 1.
    Mixture(Vec<(f64, LengthSampler)>),
    /// Uniform draw from an explicit sample set.
    Empirical(Vec<u32>),
}

impl LengthSampler {
    /// Uniform over `[lo, hi]`, validating the bounds.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn uniform(lo: u32, hi: u32) -> Self {
        assert!(lo <= hi, "uniform range inverted: [{lo}, {hi}]");
        LengthSampler::UniformRange { lo, hi }
    }

    /// Log-normal with the given log-scale parameters, clamped to
    /// `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `sigma < 0` or `min > max`.
    pub fn log_normal(mu: f64, sigma: f64, min: u32, max: u32) -> Self {
        assert!(sigma >= 0.0, "negative sigma");
        assert!(min <= max, "log-normal clamp inverted: [{min}, {max}]");
        LengthSampler::LogNormal {
            mu,
            sigma,
            min,
            max,
        }
    }

    /// Log-normal parameterized by its median (`exp(mu)`) instead of `mu`.
    pub fn log_normal_median(median: f64, sigma: f64, min: u32, max: u32) -> Self {
        LengthSampler::log_normal(median.ln(), sigma, min, max)
    }

    /// Exponential with the given mean, clamped to `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `mean <= 0` or `min > max`.
    pub fn exponential(mean: f64, min: u32, max: u32) -> Self {
        assert!(mean > 0.0, "non-positive mean");
        assert!(min <= max, "exponential clamp inverted: [{min}, {max}]");
        LengthSampler::Exponential { mean, min, max }
    }

    /// Mixture of `(weight, sampler)` components.
    ///
    /// # Panics
    ///
    /// Panics if empty or if any weight is negative/non-finite or all
    /// weights are zero.
    pub fn mixture(components: Vec<(f64, LengthSampler)>) -> Self {
        assert!(!components.is_empty(), "empty mixture");
        let total: f64 = components.iter().map(|(w, _)| *w).sum();
        assert!(
            components.iter().all(|(w, _)| w.is_finite() && *w >= 0.0) && total > 0.0,
            "invalid mixture weights"
        );
        LengthSampler::Mixture(components)
    }

    /// Empirical distribution over observed lengths.
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn empirical(samples: Vec<u32>) -> Self {
        assert!(!samples.is_empty(), "empty empirical sample set");
        LengthSampler::Empirical(samples)
    }

    /// Draws one length.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u32 {
        match self {
            LengthSampler::Fixed(v) => *v,
            LengthSampler::UniformRange { lo, hi } => rng.gen_range(*lo..=*hi),
            LengthSampler::LogNormal {
                mu,
                sigma,
                min,
                max,
            } => {
                let z = standard_normal(rng);
                let v = (mu + sigma * z).exp();
                clamp_round(v, *min, *max)
            }
            LengthSampler::Exponential { mean, min, max } => {
                // Inverse CDF; 1-u avoids ln(0).
                let u: f64 = rng.gen();
                let v = -mean * (1.0 - u).ln();
                clamp_round(v, *min, *max)
            }
            LengthSampler::Mixture(components) => {
                let total: f64 = components.iter().map(|(w, _)| *w).sum();
                let mut pick = rng.gen::<f64>() * total;
                for (w, sampler) in components {
                    if pick < *w {
                        return sampler.sample(rng);
                    }
                    pick -= w;
                }
                // Floating-point edge: fall back to the last component.
                components
                    .last()
                    .expect("mixture validated non-empty")
                    .1
                    .sample(rng)
            }
            LengthSampler::Empirical(samples) => samples[rng.gen_range(0..samples.len())],
        }
    }

    /// Draws `n` lengths.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<u32> {
        (0..n).map(|_| self.sample(rng)).collect()
    }

    /// Smallest length this sampler can produce.
    pub fn min_len(&self) -> u32 {
        match self {
            LengthSampler::Fixed(v) => *v,
            LengthSampler::UniformRange { lo, .. } => *lo,
            LengthSampler::LogNormal { min, .. } | LengthSampler::Exponential { min, .. } => *min,
            LengthSampler::Mixture(components) => components
                .iter()
                .filter(|(w, _)| *w > 0.0)
                .map(|(_, s)| s.min_len())
                .min()
                .unwrap_or(0),
            LengthSampler::Empirical(samples) => samples.iter().copied().min().unwrap_or(0),
        }
    }

    /// Largest length this sampler can produce.
    pub fn max_len(&self) -> u32 {
        match self {
            LengthSampler::Fixed(v) => *v,
            LengthSampler::UniformRange { hi, .. } => *hi,
            LengthSampler::LogNormal { max, .. } | LengthSampler::Exponential { max, .. } => *max,
            LengthSampler::Mixture(components) => components
                .iter()
                .filter(|(w, _)| *w > 0.0)
                .map(|(_, s)| s.max_len())
                .max()
                .unwrap_or(0),
            LengthSampler::Empirical(samples) => samples.iter().copied().max().unwrap_or(0),
        }
    }
}

/// Standard normal deviate via the Box–Muller transform.
fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so that ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

fn clamp_round(v: f64, min: u32, max: u32) -> u32 {
    if !v.is_finite() {
        return max;
    }
    let r = v.round();
    if r <= min as f64 {
        min
    } else if r >= max as f64 {
        max
    } else {
        r as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn fixed_and_uniform() {
        let mut rng = seeded(1);
        assert_eq!(LengthSampler::Fixed(9).sample(&mut rng), 9);
        let u = LengthSampler::uniform(5, 10);
        for _ in 0..100 {
            let v = u.sample(&mut rng);
            assert!((5..=10).contains(&v));
        }
        assert_eq!(u.min_len(), 5);
        assert_eq!(u.max_len(), 10);
    }

    #[test]
    fn uniform_covers_endpoints() {
        let mut rng = seeded(2);
        let u = LengthSampler::uniform(1, 3);
        let samples = u.sample_n(&mut rng, 1000);
        assert!(samples.contains(&1));
        assert!(samples.contains(&3));
    }

    #[test]
    fn log_normal_statistics() {
        // For LogNormal(mu, sigma): median = exp(mu), mean = exp(mu + s²/2).
        let mut rng = seeded(3);
        let s = LengthSampler::log_normal(6.0, 0.5, 1, 100_000);
        let samples = s.sample_n(&mut rng, 50_000);
        let mut sorted = samples.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2] as f64;
        let expected_median = 6.0f64.exp();
        assert!(
            (median - expected_median).abs() / expected_median < 0.05,
            "median {median} vs expected {expected_median}"
        );
        let mean = samples.iter().map(|&v| v as f64).sum::<f64>() / samples.len() as f64;
        let expected_mean = (6.0 + 0.125f64).exp();
        assert!(
            (mean - expected_mean).abs() / expected_mean < 0.05,
            "mean {mean} vs expected {expected_mean}"
        );
    }

    #[test]
    fn exponential_mean() {
        let mut rng = seeded(4);
        let s = LengthSampler::exponential(200.0, 0, 1_000_000);
        let samples = s.sample_n(&mut rng, 50_000);
        let mean = samples.iter().map(|&v| v as f64).sum::<f64>() / samples.len() as f64;
        assert!((mean - 200.0).abs() < 10.0, "mean {mean}");
    }

    #[test]
    fn mixture_respects_weights() {
        let mut rng = seeded(5);
        let m = LengthSampler::mixture(vec![
            (0.8, LengthSampler::Fixed(1)),
            (0.2, LengthSampler::Fixed(100)),
        ]);
        let samples = m.sample_n(&mut rng, 10_000);
        let ones = samples.iter().filter(|&&v| v == 1).count() as f64 / 10_000.0;
        assert!((ones - 0.8).abs() < 0.03, "P(1) = {ones}");
        assert_eq!(m.min_len(), 1);
        assert_eq!(m.max_len(), 100);
    }

    #[test]
    fn mixture_ignores_zero_weight_bounds() {
        let m = LengthSampler::mixture(vec![
            (0.0, LengthSampler::Fixed(1_000_000)),
            (1.0, LengthSampler::Fixed(5)),
        ]);
        assert_eq!(m.min_len(), 5);
        assert_eq!(m.max_len(), 5);
        let mut rng = seeded(6);
        assert_eq!(m.sample(&mut rng), 5);
    }

    #[test]
    fn empirical_resamples_observed() {
        let mut rng = seeded(7);
        let e = LengthSampler::empirical(vec![2, 4, 8]);
        for _ in 0..100 {
            assert!([2, 4, 8].contains(&e.sample(&mut rng)));
        }
        assert_eq!(e.min_len(), 2);
        assert_eq!(e.max_len(), 8);
    }

    #[test]
    fn median_constructor_matches() {
        let a = LengthSampler::log_normal_median(400.0, 0.7, 1, 4096);
        match a {
            LengthSampler::LogNormal { mu, .. } => {
                assert!((mu - 400.0f64.ln()).abs() < 1e-12);
            }
            _ => panic!("wrong variant"),
        }
    }

    #[test]
    #[should_panic(expected = "range inverted")]
    fn inverted_uniform_panics() {
        let _ = LengthSampler::uniform(10, 5);
    }

    #[test]
    #[should_panic(expected = "empty mixture")]
    fn empty_mixture_panics() {
        let _ = LengthSampler::mixture(vec![]);
    }

    #[test]
    #[should_panic(expected = "invalid mixture weights")]
    fn all_zero_weights_panic() {
        let _ = LengthSampler::mixture(vec![(0.0, LengthSampler::Fixed(1))]);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        fn sampler_strategy() -> impl Strategy<Value = LengthSampler> {
            prop_oneof![
                (1u32..10_000).prop_map(LengthSampler::Fixed),
                (1u32..5_000, 0u32..5_000).prop_map(|(lo, d)| LengthSampler::uniform(lo, lo + d)),
                (0.0f64..10.0, 0.0f64..2.0, 1u32..100, 0u32..10_000)
                    .prop_map(|(mu, s, min, d)| LengthSampler::log_normal(mu, s, min, min + d)),
                (1.0f64..5_000.0, 0u32..100, 1u32..10_000)
                    .prop_map(|(mean, min, d)| LengthSampler::exponential(mean, min, min + d)),
                proptest::collection::vec(1u32..10_000, 1..20).prop_map(LengthSampler::empirical),
            ]
        }

        proptest! {
            #[test]
            fn samples_within_declared_bounds(
                sampler in sampler_strategy(),
                seed in 0u64..1_000,
            ) {
                let mut rng = seeded(seed);
                for _ in 0..50 {
                    let v = sampler.sample(&mut rng);
                    prop_assert!(v >= sampler.min_len(), "{v} < min {}", sampler.min_len());
                    prop_assert!(v <= sampler.max_len(), "{v} > max {}", sampler.max_len());
                }
            }

            #[test]
            fn mixtures_stay_in_bounds(
                a in sampler_strategy(),
                b in sampler_strategy(),
                w in 0.01f64..0.99,
                seed in 0u64..1_000,
            ) {
                let m = LengthSampler::mixture(vec![(w, a), (1.0 - w, b)]);
                let mut rng = seeded(seed);
                for _ in 0..50 {
                    let v = m.sample(&mut rng);
                    prop_assert!(v >= m.min_len() && v <= m.max_len());
                }
            }

            #[test]
            fn sampling_is_deterministic(sampler in sampler_strategy(), seed in 0u64..1_000) {
                let a = sampler.sample_n(&mut seeded(seed), 20);
                let b = sampler.sample_n(&mut seeded(seed), 20);
                prop_assert_eq!(a, b);
            }
        }
    }
}
