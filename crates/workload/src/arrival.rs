//! Arrival processes.
//!
//! The paper's goodput experiments (Figure 7/9) simulate *closed-loop*
//! clients: each client keeps exactly one request in flight and submits the
//! next one as soon as the previous finishes, so offered load scales with
//! the number of clients. The ablations (Table 1, Figure 8) use *offline*
//! runs where all requests are available up front. An open-loop Poisson
//! process is also provided for rate-controlled studies.

use rand::Rng;

use pf_metrics::{SimDuration, SimTime};

/// Closed-loop client pool configuration.
///
/// This is a plain description consumed by the simulation driver in
/// `pf-sim`: `n_clients` requests are in flight at any time (until the
/// workload is exhausted), and a client waits `think_time` between receiving
/// the last token of one request and submitting the next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClosedLoopClients {
    /// Number of concurrent clients.
    pub n_clients: usize,
    /// Pause between a client's consecutive requests.
    pub think_time: SimDuration,
}

impl ClosedLoopClients {
    /// `n` clients with zero think time (the paper's setting).
    pub fn new(n_clients: usize) -> Self {
        ClosedLoopClients {
            n_clients,
            think_time: SimDuration::ZERO,
        }
    }

    /// Sets a think time between consecutive requests of one client.
    pub fn with_think_time(mut self, think_time: SimDuration) -> Self {
        self.think_time = think_time;
        self
    }
}

/// Open-loop Poisson arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PoissonArrivals {
    /// Mean arrival rate in requests per second.
    pub rate_per_s: f64,
}

impl PoissonArrivals {
    /// Creates a process with the given mean rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and positive.
    pub fn new(rate_per_s: f64) -> Self {
        assert!(
            rate_per_s.is_finite() && rate_per_s > 0.0,
            "invalid arrival rate {rate_per_s}"
        );
        PoissonArrivals { rate_per_s }
    }

    /// Draws `n` arrival timestamps starting at time zero (sorted,
    /// exponential inter-arrival gaps).
    pub fn assign<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<SimTime> {
        let mut now = 0.0f64;
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen();
                now += -(1.0 - u).ln() / self.rate_per_s;
                SimTime::from_secs_f64(now)
            })
            .collect()
    }
}

/// A deterministic time-varying arrival-rate profile (requests per second
/// as a function of simulated time).
///
/// These are the load shapes the elastic-autoscaling experiments exercise:
/// a smooth *diurnal* cycle (think day/night traffic compressed into a
/// simulated period) and an on/off *bursty* square wave (batch jobs, retry
/// storms). Both are periodic so a seasonal predictor has something to
/// learn.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum RateProfile {
    /// Sinusoidal cycle from `base_per_s` (at phase 0) up to `peak_per_s`
    /// (at half period) and back.
    Diurnal {
        /// Trough arrival rate in requests per second.
        base_per_s: f64,
        /// Peak arrival rate in requests per second.
        peak_per_s: f64,
        /// Length of one full cycle.
        period: SimDuration,
    },
    /// Square wave: `burst_per_s` for the first `burst_len` of every
    /// `period`, `base_per_s` otherwise.
    Bursty {
        /// Quiet-phase arrival rate in requests per second.
        base_per_s: f64,
        /// Burst-phase arrival rate in requests per second.
        burst_per_s: f64,
        /// Duration of the burst within each period.
        burst_len: SimDuration,
        /// Length of one full cycle.
        period: SimDuration,
    },
}

impl RateProfile {
    /// Creates a diurnal profile, validating the parameters.
    ///
    /// # Panics
    ///
    /// Panics if rates are not finite/positive, `peak < base`, or the
    /// period is zero.
    pub fn diurnal(base_per_s: f64, peak_per_s: f64, period: SimDuration) -> Self {
        assert!(
            base_per_s.is_finite() && base_per_s > 0.0,
            "invalid base rate {base_per_s}"
        );
        assert!(
            peak_per_s.is_finite() && peak_per_s >= base_per_s,
            "peak rate {peak_per_s} below base {base_per_s}"
        );
        assert!(!period.is_zero(), "zero diurnal period");
        RateProfile::Diurnal {
            base_per_s,
            peak_per_s,
            period,
        }
    }

    /// Creates a bursty profile, validating the parameters.
    ///
    /// # Panics
    ///
    /// Panics if rates are not finite/positive, `burst < base`, or
    /// `burst_len` is zero or not shorter than `period`.
    pub fn bursty(
        base_per_s: f64,
        burst_per_s: f64,
        burst_len: SimDuration,
        period: SimDuration,
    ) -> Self {
        assert!(
            base_per_s.is_finite() && base_per_s > 0.0,
            "invalid base rate {base_per_s}"
        );
        assert!(
            burst_per_s.is_finite() && burst_per_s >= base_per_s,
            "burst rate {burst_per_s} below base {base_per_s}"
        );
        assert!(
            !burst_len.is_zero() && burst_len < period,
            "burst length must be positive and shorter than the period"
        );
        RateProfile::Bursty {
            base_per_s,
            burst_per_s,
            burst_len,
            period,
        }
    }

    /// Instantaneous arrival rate at simulated time `t`.
    pub fn rate_at(&self, t: SimTime) -> f64 {
        match *self {
            RateProfile::Diurnal {
                base_per_s,
                peak_per_s,
                period,
            } => {
                let phase = t.as_secs_f64() / period.as_secs_f64();
                let swing = 0.5 * (1.0 - (std::f64::consts::TAU * phase).cos());
                base_per_s + (peak_per_s - base_per_s) * swing
            }
            RateProfile::Bursty {
                base_per_s,
                burst_per_s,
                burst_len,
                period,
            } => {
                let in_period = t.as_micros() % period.as_micros();
                if in_period < burst_len.as_micros() {
                    burst_per_s
                } else {
                    base_per_s
                }
            }
        }
    }

    /// Upper bound of the rate over all times (the thinning envelope).
    pub fn max_rate(&self) -> f64 {
        match *self {
            RateProfile::Diurnal { peak_per_s, .. } => peak_per_s,
            RateProfile::Bursty { burst_per_s, .. } => burst_per_s,
        }
    }

    /// Length of one cycle.
    pub fn period(&self) -> SimDuration {
        match *self {
            RateProfile::Diurnal { period, .. } | RateProfile::Bursty { period, .. } => period,
        }
    }

    /// Draws `n` arrival timestamps from the non-homogeneous Poisson
    /// process with this rate function (Lewis–Shedler thinning: candidates
    /// at the envelope rate, accepted with probability `rate(t)/max`).
    pub fn assign<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<SimTime> {
        let envelope = self.max_rate();
        let mut now = 0.0f64;
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            let u: f64 = rng.gen();
            now += -(1.0 - u).ln() / envelope;
            let t = SimTime::from_secs_f64(now);
            let accept: f64 = rng.gen();
            if accept * envelope < self.rate_at(t) {
                out.push(t);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn closed_loop_builder() {
        let c = ClosedLoopClients::new(40).with_think_time(SimDuration::from_secs(1));
        assert_eq!(c.n_clients, 40);
        assert_eq!(c.think_time, SimDuration::from_secs(1));
        assert_eq!(ClosedLoopClients::new(3).think_time, SimDuration::ZERO);
    }

    #[test]
    fn poisson_mean_rate() {
        let mut rng = seeded(1);
        let arrivals = PoissonArrivals::new(50.0).assign(&mut rng, 20_000);
        let span = arrivals.last().unwrap().as_secs_f64();
        let rate = 20_000.0 / span;
        assert!((rate - 50.0).abs() < 2.0, "observed rate {rate}");
    }

    #[test]
    fn poisson_is_sorted_and_deterministic() {
        let a = PoissonArrivals::new(10.0).assign(&mut seeded(2), 100);
        let b = PoissonArrivals::new(10.0).assign(&mut seeded(2), 100);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "invalid arrival rate")]
    fn zero_rate_panics() {
        let _ = PoissonArrivals::new(0.0);
    }

    #[test]
    fn diurnal_rate_cycles_between_base_and_peak() {
        let p = RateProfile::diurnal(2.0, 10.0, SimDuration::from_secs(100));
        assert!((p.rate_at(SimTime::ZERO) - 2.0).abs() < 1e-9);
        assert!((p.rate_at(SimTime::from_secs(50)) - 10.0).abs() < 1e-9);
        assert!((p.rate_at(SimTime::from_secs(100)) - 2.0).abs() < 1e-9);
        let quarter = p.rate_at(SimTime::from_secs(25));
        assert!((quarter - 6.0).abs() < 1e-9, "midpoint rate {quarter}");
        assert_eq!(p.max_rate(), 10.0);
    }

    #[test]
    fn bursty_rate_is_square_wave() {
        let p = RateProfile::bursty(
            1.0,
            20.0,
            SimDuration::from_secs(10),
            SimDuration::from_secs(60),
        );
        assert_eq!(p.rate_at(SimTime::from_secs(5)), 20.0);
        assert_eq!(p.rate_at(SimTime::from_secs(30)), 1.0);
        // Periodicity.
        assert_eq!(p.rate_at(SimTime::from_secs(65)), 20.0);
        assert_eq!(p.rate_at(SimTime::from_secs(90)), 1.0);
    }

    #[test]
    fn thinning_matches_mean_rate() {
        // Diurnal 5..15 over 200 s has a long-run mean of 10/s.
        let p = RateProfile::diurnal(5.0, 15.0, SimDuration::from_secs(200));
        let arrivals = p.assign(&mut seeded(3), 20_000);
        let span = arrivals.last().unwrap().as_secs_f64();
        let rate = 20_000.0 / span;
        assert!((rate - 10.0).abs() < 0.5, "observed rate {rate}");
        assert!(arrivals.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn thinning_concentrates_arrivals_in_bursts() {
        let p = RateProfile::bursty(
            1.0,
            20.0,
            SimDuration::from_secs(10),
            SimDuration::from_secs(60),
        );
        let arrivals = p.assign(&mut seeded(4), 5_000);
        let in_burst = arrivals
            .iter()
            .filter(|t| t.as_micros() % 60_000_000 < 10_000_000)
            .count() as f64
            / 5_000.0;
        // Bursts carry 200 of every 250 expected arrivals (80%).
        assert!((in_burst - 0.8).abs() < 0.05, "burst share {in_burst}");
    }

    #[test]
    fn variable_arrivals_deterministic() {
        let p = RateProfile::diurnal(2.0, 8.0, SimDuration::from_secs(50));
        assert_eq!(p.assign(&mut seeded(5), 500), p.assign(&mut seeded(5), 500));
    }

    #[test]
    #[should_panic(expected = "peak rate")]
    fn diurnal_peak_below_base_panics() {
        let _ = RateProfile::diurnal(5.0, 1.0, SimDuration::from_secs(10));
    }

    #[test]
    #[should_panic(expected = "burst length")]
    fn bursty_burst_longer_than_period_panics() {
        let _ = RateProfile::bursty(
            1.0,
            2.0,
            SimDuration::from_secs(10),
            SimDuration::from_secs(10),
        );
    }
}
