//! Arrival processes.
//!
//! The paper's goodput experiments (Figure 7/9) simulate *closed-loop*
//! clients: each client keeps exactly one request in flight and submits the
//! next one as soon as the previous finishes, so offered load scales with
//! the number of clients. The ablations (Table 1, Figure 8) use *offline*
//! runs where all requests are available up front. An open-loop Poisson
//! process is also provided for rate-controlled studies.

use rand::Rng;

use pf_metrics::{SimDuration, SimTime};

/// Closed-loop client pool configuration.
///
/// This is a plain description consumed by the simulation driver in
/// `pf-sim`: `n_clients` requests are in flight at any time (until the
/// workload is exhausted), and a client waits `think_time` between receiving
/// the last token of one request and submitting the next.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ClosedLoopClients {
    /// Number of concurrent clients.
    pub n_clients: usize,
    /// Pause between a client's consecutive requests.
    pub think_time: SimDuration,
}

impl ClosedLoopClients {
    /// `n` clients with zero think time (the paper's setting).
    pub fn new(n_clients: usize) -> Self {
        ClosedLoopClients {
            n_clients,
            think_time: SimDuration::ZERO,
        }
    }

    /// Sets a think time between consecutive requests of one client.
    pub fn with_think_time(mut self, think_time: SimDuration) -> Self {
        self.think_time = think_time;
        self
    }
}

/// Open-loop Poisson arrival process.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PoissonArrivals {
    /// Mean arrival rate in requests per second.
    pub rate_per_s: f64,
}

impl PoissonArrivals {
    /// Creates a process with the given mean rate.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not finite and positive.
    pub fn new(rate_per_s: f64) -> Self {
        assert!(
            rate_per_s.is_finite() && rate_per_s > 0.0,
            "invalid arrival rate {rate_per_s}"
        );
        PoissonArrivals { rate_per_s }
    }

    /// Draws `n` arrival timestamps starting at time zero (sorted,
    /// exponential inter-arrival gaps).
    pub fn assign<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<SimTime> {
        let mut now = 0.0f64;
        (0..n)
            .map(|_| {
                let u: f64 = rng.gen();
                now += -(1.0 - u).ln() / self.rate_per_s;
                SimTime::from_secs_f64(now)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::seeded;

    #[test]
    fn closed_loop_builder() {
        let c = ClosedLoopClients::new(40).with_think_time(SimDuration::from_secs(1));
        assert_eq!(c.n_clients, 40);
        assert_eq!(c.think_time, SimDuration::from_secs(1));
        assert_eq!(ClosedLoopClients::new(3).think_time, SimDuration::ZERO);
    }

    #[test]
    fn poisson_mean_rate() {
        let mut rng = seeded(1);
        let arrivals = PoissonArrivals::new(50.0).assign(&mut rng, 20_000);
        let span = arrivals.last().unwrap().as_secs_f64();
        let rate = 20_000.0 / span;
        assert!((rate - 50.0).abs() < 2.0, "observed rate {rate}");
    }

    #[test]
    fn poisson_is_sorted_and_deterministic() {
        let a = PoissonArrivals::new(10.0).assign(&mut seeded(2), 100);
        let b = PoissonArrivals::new(10.0).assign(&mut seeded(2), 100);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    #[should_panic(expected = "invalid arrival rate")]
    fn zero_rate_panics() {
        let _ = PoissonArrivals::new(0.0);
    }
}
