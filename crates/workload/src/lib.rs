//! Request length distributions, datasets, trace synthesis and arrival
//! processes for LLM serving experiments.
//!
//! This crate generates every workload the paper evaluates on, as synthetic
//! equivalents of the original datasets (see `DESIGN.md` for the
//! substitution table):
//!
//! * [`datasets`] — Distribution-1/2/3 (uniform ranges straight from the
//!   paper), ShareGPT-like, ShareGPT-o1-like (chain-of-thought heavy
//!   outputs), multimodal TextVQA-like workloads and the mixed-phase
//!   workload of Figure 8;
//! * [`trace`] — long request traces with controlled distribution drift for
//!   the window-similarity study (Figures 3 and 4);
//! * [`LengthSampler`] — the underlying distribution toolkit (uniform,
//!   log-normal via in-crate Box–Muller, exponential, mixtures, empirical);
//! * [`PoissonArrivals`] / [`ClosedLoopClients`] — open- and closed-loop
//!   arrival processes;
//! * [`trace_io`] — CSV import/export so real traces (BurstGPT-style
//!   exports) can replace the synthetic generators.
//!
//! Everything is deterministic given a `u64` seed.
//!
//! # Example
//!
//! ```
//! use pf_workload::{datasets, LengthSampler};
//! use rand::SeedableRng;
//!
//! let requests = datasets::distribution_1(100, 42);
//! assert_eq!(requests.len(), 100);
//! assert!(requests.iter().all(|r| (32..=4096).contains(&r.input_len)));
//! assert!(requests.iter().all(|r| (2048..=4096).contains(&r.true_output_len)));
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(1);
//! let sampler = LengthSampler::log_normal(6.0, 0.5, 1, 10_000);
//! let x = sampler.sample(&mut rng);
//! assert!((1..=10_000).contains(&x));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod arrival;
pub mod datasets;
mod request;
pub mod rng;
mod sampler;
pub mod trace;
pub mod trace_io;

pub use arrival::{ClosedLoopClients, PoissonArrivals, RateProfile};
pub use request::{PrefixId, RequestId, RequestSpec};
pub use sampler::LengthSampler;
