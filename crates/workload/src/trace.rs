//! Synthetic request traces with controlled distribution drift.
//!
//! Figures 3 and 4 of the paper study how the *output-length distribution*
//! of a service changes across time windows: single-service traces (chat,
//! code completion) are close to stationary, while API traces mix several
//! task types whose proportions drift over hours. The crucial property for
//! the Past-Future scheduler is that **adjacent** windows stay similar even
//! when distant windows do not.
//!
//! We cannot ship BurstGPT/Mooncake, so each archetype below is a generator
//! whose *windowed histogram structure* mirrors the corresponding trace
//! family: a base mixture of task types plus a slow, seeded drift process on
//! the mixture weights and location parameters.

use rand::Rng;

use crate::rng::{derive_seed, seeded};
use crate::sampler::LengthSampler;

/// Trace families studied in Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TraceArchetype {
    /// BurstGPT (a): end-user conversation service. Near-stationary.
    Conversation,
    /// BurstGPT (b): API service mixing several task types whose
    /// proportions drift over hours — globally non-stationary, locally
    /// stable.
    ApiService,
    /// In-house dialog service (c).
    InhouseDialogA,
    /// In-house dialog service (d), longer-form.
    InhouseDialogB,
    /// In-house code-completion service (e): mostly short completions.
    CodeCompletion,
    /// Mooncake-style long-context dialog trace (f).
    Mooncake,
}

impl TraceArchetype {
    /// All archetypes in the order of the paper's Figure 3 panels (a)–(f).
    pub const ALL: [TraceArchetype; 6] = [
        TraceArchetype::Conversation,
        TraceArchetype::ApiService,
        TraceArchetype::InhouseDialogA,
        TraceArchetype::InhouseDialogB,
        TraceArchetype::CodeCompletion,
        TraceArchetype::Mooncake,
    ];

    /// Short label used in figures and CSV output.
    pub fn label(self) -> &'static str {
        match self {
            TraceArchetype::Conversation => "conversation",
            TraceArchetype::ApiService => "api",
            TraceArchetype::InhouseDialogA => "dialog-a",
            TraceArchetype::InhouseDialogB => "dialog-b",
            TraceArchetype::CodeCompletion => "code",
            TraceArchetype::Mooncake => "mooncake",
        }
    }

    /// True when the paper reports the trace as globally near-stationary
    /// (every window resembles every other, not just adjacent ones).
    pub fn is_globally_stable(self) -> bool {
        !matches!(self, TraceArchetype::ApiService)
    }
}

/// Generates `n` request output lengths in arrival order.
///
/// The generator is deterministic in `(archetype, n, seed)`.
pub fn generate_output_lengths(archetype: TraceArchetype, n: usize, seed: u64) -> Vec<u32> {
    let mut rng = seeded(derive_seed(seed, archetype as u64 + 10));
    let mut drift = DriftProcess::new(archetype, derive_seed(seed, archetype as u64 + 500));
    (0..n)
        .map(|i| {
            let phase = i as f64 / n.max(1) as f64;
            drift.advance(&mut rng);
            sample_one(archetype, phase, &drift, &mut rng)
        })
        .collect()
}

/// Slowly varying latent state: a reflected random walk per mixture
/// component plus a deterministic diurnal phase.
#[derive(Debug, Clone)]
struct DriftProcess {
    /// Random-walk states in [0, 1], one per task type.
    walk: Vec<f64>,
    /// Per-step walk magnitude (larger = faster drift).
    step: f64,
    rng: rand::rngs::StdRng,
}

impl DriftProcess {
    fn new(archetype: TraceArchetype, seed: u64) -> Self {
        let (n_components, step) = match archetype {
            // API services drift the fastest (task-mix changes over hours).
            TraceArchetype::ApiService => (4, 8e-3),
            TraceArchetype::Conversation => (2, 4e-5),
            TraceArchetype::InhouseDialogA => (2, 6e-5),
            TraceArchetype::InhouseDialogB => (2, 8e-5),
            TraceArchetype::CodeCompletion => (2, 3e-5),
            TraceArchetype::Mooncake => (2, 5e-5),
        };
        DriftProcess {
            walk: vec![0.5; n_components],
            step,
            rng: seeded(seed),
        }
    }

    fn advance<R: Rng + ?Sized>(&mut self, _outer: &mut R) {
        for w in &mut self.walk {
            let delta = (self.rng.gen::<f64>() - 0.5) * 2.0 * self.step;
            let mut next = *w + delta;
            // Reflect at the boundaries to keep the walk in [0, 1].
            if next < 0.0 {
                next = -next;
            }
            if next > 1.0 {
                next = 2.0 - next;
            }
            *w = next;
        }
    }

    fn weight(&self, i: usize) -> f64 {
        self.walk[i % self.walk.len()]
    }
}

fn sample_one(
    archetype: TraceArchetype,
    phase: f64,
    drift: &DriftProcess,
    rng: &mut rand::rngs::StdRng,
) -> u32 {
    use std::f64::consts::TAU;
    match archetype {
        TraceArchetype::Conversation => {
            // Single service: log-normal whose median breathes ±10% over a
            // diurnal cycle; windows everywhere look alike.
            let median = 260.0 * (1.0 + 0.10 * (TAU * phase * 2.0).sin());
            LengthSampler::log_normal_median(median, 0.85, 2, 4096).sample(rng)
        }
        TraceArchetype::ApiService => {
            // Four task types with drifting proportions: short extraction,
            // classification, chat, long generation. Adjacent windows share
            // the walk state; distant windows do not.
            // Squaring the walk state sharpens the contrast between
            // dominant and dormant task types, so the global mix genuinely
            // changes while adjacent windows still share the walk state.
            let w = [
                0.02 + drift.weight(0).powi(2),
                0.02 + drift.weight(1).powi(2),
                0.02 + drift.weight(2).powi(2),
                0.02 + drift.weight(3).powi(2),
            ];
            let mixture = LengthSampler::mixture(vec![
                (w[0], LengthSampler::uniform(1, 24)),
                (w[1], LengthSampler::uniform(1, 4)),
                (w[2], LengthSampler::log_normal_median(280.0, 0.7, 8, 2048)),
                (
                    w[3],
                    LengthSampler::log_normal_median(1200.0, 0.5, 256, 8192),
                ),
            ]);
            mixture.sample(rng)
        }
        TraceArchetype::InhouseDialogA => {
            let median = 300.0 * (1.0 + 0.12 * (TAU * (phase * 1.5 + drift.weight(0))).sin());
            LengthSampler::log_normal_median(median, 0.8, 2, 4096).sample(rng)
        }
        TraceArchetype::InhouseDialogB => {
            let median = 600.0 * (1.0 + 0.15 * (TAU * (phase * 1.2 + drift.weight(1))).cos());
            LengthSampler::log_normal_median(median, 0.7, 4, 8192).sample(rng)
        }
        TraceArchetype::CodeCompletion => {
            // Mostly short completions with a stable minority of long ones.
            let long_w = 0.12 + 0.05 * drift.weight(0);
            LengthSampler::mixture(vec![
                (
                    1.0 - long_w,
                    LengthSampler::log_normal_median(28.0, 0.6, 1, 256),
                ),
                (
                    long_w,
                    LengthSampler::log_normal_median(220.0, 0.5, 64, 1024),
                ),
            ])
            .sample(rng)
        }
        TraceArchetype::Mooncake => {
            let median = 420.0 * (1.0 + 0.08 * (TAU * phase).sin());
            LengthSampler::log_normal_median(median, 0.75, 8, 8192).sample(rng)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_metrics::{Binning, WindowedLengths};

    #[test]
    fn traces_are_deterministic() {
        for archetype in TraceArchetype::ALL {
            let a = generate_output_lengths(archetype, 500, 7);
            let b = generate_output_lengths(archetype, 500, 7);
            assert_eq!(a, b, "{archetype:?} not deterministic");
            let c = generate_output_lengths(archetype, 500, 8);
            assert_ne!(a, c, "{archetype:?} ignores seed");
        }
    }

    #[test]
    fn labels_are_unique() {
        let labels: std::collections::HashSet<&str> =
            TraceArchetype::ALL.iter().map(|a| a.label()).collect();
        assert_eq!(labels.len(), TraceArchetype::ALL.len());
    }

    /// The paper's core observation (Figure 3): adjacent windows are always
    /// similar; for the API archetype distant windows are noticeably less
    /// similar than adjacent ones.
    #[test]
    fn adjacent_windows_stay_similar() {
        for archetype in TraceArchetype::ALL {
            let lengths = generate_output_lengths(archetype, 20_000, 11);
            let windows = WindowedLengths::partition(&lengths, 1000, Binning::Log2);
            let m = windows.similarity_matrix();
            let diag = m.diagonal_mean().unwrap();
            assert!(
                diag > 0.80,
                "{archetype:?}: adjacent-window similarity too low: {diag}"
            );
        }
    }

    #[test]
    fn api_trace_drifts_globally() {
        let lengths = generate_output_lengths(TraceArchetype::ApiService, 40_000, 13);
        let windows = WindowedLengths::partition(&lengths, 1000, Binning::Log2);
        let m = windows.similarity_matrix();
        let diag = m.diagonal_mean().unwrap();
        let global = m.off_diagonal_mean().unwrap();
        assert!(
            diag - global > 0.03,
            "API diagonal ({diag}) should clearly beat global ({global})"
        );
    }

    #[test]
    fn conversation_trace_is_globally_stable() {
        let lengths = generate_output_lengths(TraceArchetype::Conversation, 30_000, 17);
        let windows = WindowedLengths::partition(&lengths, 1000, Binning::Log2);
        let m = windows.similarity_matrix();
        let global = m.off_diagonal_mean().unwrap();
        assert!(
            global > 0.90,
            "conversation global similarity {global} too low"
        );
    }

    #[test]
    fn code_trace_is_short_output() {
        let lengths = generate_output_lengths(TraceArchetype::CodeCompletion, 5000, 3);
        let mean = lengths.iter().map(|&v| v as f64).sum::<f64>() / lengths.len() as f64;
        assert!(mean < 120.0, "code completions too long on average: {mean}");
    }
}
