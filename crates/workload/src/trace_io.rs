//! Reading and writing request traces as CSV.
//!
//! The similarity study (Figures 3/4) and the Past-Future history window
//! only need `(arrival_order, input_len, output_len)` per request — the
//! schema below is a minimal common denominator of public traces such as
//! BurstGPT (`Timestamp, Model, Request tokens, Response tokens, ...`).
//! Users with access to real traces can export them to this schema and run
//! every experiment in this workspace on them; the synthetic generators in
//! [`crate::trace`] exist only because the real traces cannot be shipped.
//!
//! Format: a header line `input_len,output_len,prefix_id,prefix_len`
//! followed by one record per request in arrival order. Extra columns are
//! ignored on import; column order is taken from the header.
//!
//! # Prefix columns (backward-compatible)
//!
//! `prefix_id` and `prefix_len` carry the shared-prefix structure that
//! KV-aware prefix-affinity routing consumes (see
//! [`crate::datasets::multi_turn_chat`]): `prefix_id` names the session or
//! system-prompt prefix the request extends, and `prefix_len` is how many
//! of the request's leading prompt tokens repeat it. Both columns are
//! **optional on import**: traces written before these columns existed —
//! or any export that omits them — parse exactly as before, defaulting
//! every record to no prefix (`prefix_id` empty, `prefix_len` 0). An empty
//! `prefix_id` field means "no shared prefix"; `prefix_len` is only
//! meaningful alongside a non-empty `prefix_id`.

use std::io::{BufRead, BufReader, Read, Write};

use crate::request::RequestSpec;

/// A minimal trace record: one request's input and output lengths (plus
/// optional shared-prefix structure), in arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceRecord {
    /// Prompt length in tokens.
    pub input_len: u32,
    /// Output length in tokens.
    pub output_len: u32,
    /// Shared prefix the request extends (`None` for prefix-free traffic
    /// and for traces without the column).
    pub prefix_id: Option<u64>,
    /// Leading prompt tokens repeating the prefix (0 without a prefix).
    pub prefix_len: u32,
}

/// Error raised while parsing a trace CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace csv line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Parses a trace from CSV with an `input_len,output_len` header.
///
/// Column order is taken from the header (case-insensitive names
/// `input_len`/`output_len`; additional columns are ignored), so BurstGPT
/// exports with extra metadata columns work unchanged.
///
/// # Errors
///
/// Returns [`ParseTraceError`] for a missing/invalid header, non-numeric
/// fields, or rows with too few columns. I/O errors are reported on the
/// offending line.
///
/// # Example
///
/// ```
/// use pf_workload::trace_io::read_trace_csv;
///
/// let csv = "input_len,output_len\n120,480\n88,32\n";
/// let records = read_trace_csv(csv.as_bytes())?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].output_len, 480);
/// # Ok::<(), pf_workload::trace_io::ParseTraceError>(())
/// ```
pub fn read_trace_csv<R: Read>(reader: R) -> Result<Vec<TraceRecord>, ParseTraceError> {
    let mut lines = BufReader::new(reader).lines().enumerate();
    let header = match lines.next() {
        Some((_, Ok(line))) => line,
        Some((_, Err(e))) => {
            return Err(ParseTraceError {
                line: 1,
                message: format!("io error: {e}"),
            })
        }
        None => {
            return Err(ParseTraceError {
                line: 1,
                message: "empty file".to_string(),
            })
        }
    };
    let columns: Vec<String> = header
        .split(',')
        .map(|c| c.trim().to_ascii_lowercase())
        .collect();
    let input_col = columns.iter().position(|c| c == "input_len");
    let output_col = columns.iter().position(|c| c == "output_len");
    let (Some(input_col), Some(output_col)) = (input_col, output_col) else {
        return Err(ParseTraceError {
            line: 1,
            message: format!("header must name input_len and output_len, got '{header}'"),
        });
    };
    // Optional prefix columns: absent in pre-prefix traces, which default
    // to prefix-free records (see the module docs).
    let prefix_id_col = columns.iter().position(|c| c == "prefix_id");
    let prefix_len_col = columns.iter().position(|c| c == "prefix_len");
    let mut records = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line.map_err(|e| ParseTraceError {
            line: line_no,
            message: format!("io error: {e}"),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        let field = |col: usize, name: &str| -> Result<u32, ParseTraceError> {
            let raw = fields.get(col).ok_or_else(|| ParseTraceError {
                line: line_no,
                message: format!("missing {name} column"),
            })?;
            raw.trim().parse().map_err(|_| ParseTraceError {
                line: line_no,
                message: format!("invalid {name} value '{raw}'"),
            })
        };
        // An empty prefix_id field means "no shared prefix"; a row in a
        // prefix-aware trace may also simply be shorter than the prefix
        // columns (defaults apply).
        let prefix_id = match prefix_id_col.and_then(|col| fields.get(col)) {
            Some(raw) if !raw.trim().is_empty() => {
                Some(raw.trim().parse().map_err(|_| ParseTraceError {
                    line: line_no,
                    message: format!("invalid prefix_id value '{raw}'"),
                })?)
            }
            _ => None,
        };
        let prefix_len = match prefix_len_col.and_then(|col| fields.get(col)) {
            Some(raw) if !raw.trim().is_empty() => {
                raw.trim().parse().map_err(|_| ParseTraceError {
                    line: line_no,
                    message: format!("invalid prefix_len value '{raw}'"),
                })?
            }
            _ => 0,
        };
        records.push(TraceRecord {
            input_len: field(input_col, "input_len")?,
            output_len: field(output_col, "output_len")?,
            prefix_id,
            prefix_len,
        });
    }
    Ok(records)
}

/// Writes a trace in the canonical
/// `input_len,output_len,prefix_id,prefix_len` schema (prefix-free
/// records leave the `prefix_id` field empty).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace_csv<W: Write>(mut writer: W, records: &[TraceRecord]) -> std::io::Result<()> {
    writeln!(writer, "input_len,output_len,prefix_id,prefix_len")?;
    for record in records {
        let prefix_id = record.prefix_id.map_or(String::new(), |id| id.to_string());
        writeln!(
            writer,
            "{},{},{},{}",
            record.input_len, record.output_len, prefix_id, record.prefix_len
        )?;
    }
    Ok(())
}

/// Converts trace records into simulator requests.
///
/// `max_new_tokens` caps the generation exactly as the serving system
/// would; records whose output exceeds the cap are clamped (the real
/// system would have cut them off too). Records with zero output are
/// dropped (log-style traces occasionally contain aborted requests).
/// Prefix structure carries over; a `prefix_len` exceeding the prompt is
/// clamped to it (defensive against hand-edited traces).
pub fn requests_from_records(records: &[TraceRecord], max_new_tokens: u32) -> Vec<RequestSpec> {
    records
        .iter()
        .filter(|r| r.output_len > 0)
        .enumerate()
        .map(|(i, r)| {
            let spec = RequestSpec::new(
                i as u64,
                r.input_len,
                r.output_len.min(max_new_tokens),
                max_new_tokens,
            );
            match r.prefix_id {
                Some(id) => spec.with_prefix(id, r.prefix_len.min(r.input_len)),
                None => spec,
            }
        })
        .collect()
}

/// Extracts records from generated requests (round-trip with
/// [`requests_from_records`]).
pub fn records_from_requests(requests: &[RequestSpec]) -> Vec<TraceRecord> {
    requests
        .iter()
        .map(|r| TraceRecord {
            input_len: r.input_len,
            output_len: r.true_output_len,
            prefix_id: r.prefix_id.map(|p| p.raw()),
            prefix_len: r.prefix_len,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn parse_minimal_csv() {
        let csv = "input_len,output_len\n10,20\n30,40\n";
        let records = read_trace_csv(csv.as_bytes()).unwrap();
        assert_eq!(
            records,
            vec![
                TraceRecord {
                    input_len: 10,
                    output_len: 20,
                    ..TraceRecord::default()
                },
                TraceRecord {
                    input_len: 30,
                    output_len: 40,
                    ..TraceRecord::default()
                },
            ]
        );
    }

    #[test]
    fn parse_reordered_and_extra_columns() {
        let csv = "timestamp,output_len,model,input_len\n1.5,99,gpt,7\n";
        let records = read_trace_csv(csv.as_bytes()).unwrap();
        assert_eq!(
            records,
            vec![TraceRecord {
                input_len: 7,
                output_len: 99,
                ..TraceRecord::default()
            }]
        );
    }

    #[test]
    fn parse_skips_blank_lines_and_trims() {
        let csv = "input_len , output_len\n 10 , 20 \n\n30,40\n";
        let records = read_trace_csv(csv.as_bytes()).unwrap();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn parse_errors_are_located() {
        let bad_header = read_trace_csv("foo,bar\n1,2\n".as_bytes()).unwrap_err();
        assert_eq!(bad_header.line, 1);
        let bad_value = read_trace_csv("input_len,output_len\n1,x\n".as_bytes()).unwrap_err();
        assert_eq!(bad_value.line, 2);
        assert!(bad_value.to_string().contains("invalid output_len"));
        let short_row = read_trace_csv("input_len,output_len\n5\n".as_bytes()).unwrap_err();
        assert!(short_row.message.contains("missing output_len"));
        let empty = read_trace_csv("".as_bytes()).unwrap_err();
        assert!(empty.message.contains("empty"));
    }

    #[test]
    fn old_schema_defaults_to_no_prefix() {
        // Pre-prefix traces (no prefix columns) parse unchanged.
        let csv = "input_len,output_len\n10,20\n";
        let records = read_trace_csv(csv.as_bytes()).unwrap();
        assert_eq!(records[0].prefix_id, None);
        assert_eq!(records[0].prefix_len, 0);
    }

    #[test]
    fn prefix_columns_parse_and_roundtrip() {
        let csv = "input_len,output_len,prefix_id,prefix_len\n300,40,7,250\n80,10,,0\n";
        let records = read_trace_csv(csv.as_bytes()).unwrap();
        assert_eq!(records[0].prefix_id, Some(7));
        assert_eq!(records[0].prefix_len, 250);
        assert_eq!(records[1].prefix_id, None);
        let mut buffer = Vec::new();
        write_trace_csv(&mut buffer, &records).unwrap();
        assert_eq!(read_trace_csv(buffer.as_slice()).unwrap(), records);
        // Conversion carries the prefix into the request spec.
        let requests = requests_from_records(&records, 512);
        assert_eq!(requests[0].prefix_id.map(|p| p.raw()), Some(7));
        assert_eq!(requests[0].prefix_len, 250);
        assert_eq!(requests[1].prefix_id, None);
    }

    #[test]
    fn invalid_prefix_values_are_located() {
        let bad_id =
            read_trace_csv("input_len,output_len,prefix_id,prefix_len\n1,2,x,0\n".as_bytes())
                .unwrap_err();
        assert_eq!(bad_id.line, 2);
        assert!(bad_id.message.contains("invalid prefix_id"));
        let bad_len =
            read_trace_csv("input_len,output_len,prefix_id,prefix_len\n1,2,3,-1\n".as_bytes())
                .unwrap_err();
        assert!(bad_len.message.contains("invalid prefix_len"));
    }

    #[test]
    fn multi_turn_sessions_roundtrip_through_csv() {
        let requests = datasets::multi_turn_chat(60, 5);
        let records = records_from_requests(&requests);
        let mut buffer = Vec::new();
        write_trace_csv(&mut buffer, &records).unwrap();
        let parsed = read_trace_csv(buffer.as_slice()).unwrap();
        assert_eq!(parsed, records);
        let rebuilt = requests_from_records(&parsed, 512);
        for (a, b) in rebuilt.iter().zip(&requests) {
            assert_eq!(a.prefix_id, b.prefix_id);
            assert_eq!(a.prefix_len, b.prefix_len);
        }
    }

    #[test]
    fn roundtrip_through_csv() {
        let requests = datasets::sharegpt(50, 1);
        let records = records_from_requests(&requests);
        let mut buffer = Vec::new();
        write_trace_csv(&mut buffer, &records).unwrap();
        let parsed = read_trace_csv(buffer.as_slice()).unwrap();
        assert_eq!(parsed, records);
        let rebuilt = requests_from_records(&parsed, 2048);
        assert_eq!(rebuilt.len(), requests.len());
        for (a, b) in rebuilt.iter().zip(&requests) {
            assert_eq!(a.input_len, b.input_len);
            assert_eq!(a.true_output_len, b.true_output_len);
        }
    }

    #[test]
    fn conversion_clamps_and_drops() {
        let records = [
            TraceRecord {
                input_len: 10,
                output_len: 5000,
                ..TraceRecord::default()
            },
            TraceRecord {
                input_len: 10,
                output_len: 0,
                ..TraceRecord::default()
            },
            TraceRecord {
                input_len: 10,
                output_len: 7,
                ..TraceRecord::default()
            },
        ];
        let requests = requests_from_records(&records, 2048);
        assert_eq!(requests.len(), 2, "zero-output record dropped");
        assert_eq!(requests[0].true_output_len, 2048, "over-cap output clamped");
        assert_eq!(requests[1].true_output_len, 7);
        // Ids are re-assigned densely.
        assert_eq!(requests[1].id.raw(), 1);
    }
}
