//! Reading and writing request traces as CSV.
//!
//! The similarity study (Figures 3/4) and the Past-Future history window
//! only need `(arrival_order, input_len, output_len)` per request — the
//! schema below is a minimal common denominator of public traces such as
//! BurstGPT (`Timestamp, Model, Request tokens, Response tokens, ...`).
//! Users with access to real traces can export them to this schema and run
//! every experiment in this workspace on them; the synthetic generators in
//! [`crate::trace`] exist only because the real traces cannot be shipped.
//!
//! Format: a header line `input_len,output_len` followed by one record per
//! request in arrival order. Extra columns are ignored on import.

use std::io::{BufRead, BufReader, Read, Write};

use crate::request::RequestSpec;

/// A minimal trace record: one request's input and output lengths, in
/// arrival order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceRecord {
    /// Prompt length in tokens.
    pub input_len: u32,
    /// Output length in tokens.
    pub output_len: u32,
}

/// Error raised while parsing a trace CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace csv line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Parses a trace from CSV with an `input_len,output_len` header.
///
/// Column order is taken from the header (case-insensitive names
/// `input_len`/`output_len`; additional columns are ignored), so BurstGPT
/// exports with extra metadata columns work unchanged.
///
/// # Errors
///
/// Returns [`ParseTraceError`] for a missing/invalid header, non-numeric
/// fields, or rows with too few columns. I/O errors are reported on the
/// offending line.
///
/// # Example
///
/// ```
/// use pf_workload::trace_io::read_trace_csv;
///
/// let csv = "input_len,output_len\n120,480\n88,32\n";
/// let records = read_trace_csv(csv.as_bytes())?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].output_len, 480);
/// # Ok::<(), pf_workload::trace_io::ParseTraceError>(())
/// ```
pub fn read_trace_csv<R: Read>(reader: R) -> Result<Vec<TraceRecord>, ParseTraceError> {
    let mut lines = BufReader::new(reader).lines().enumerate();
    let header = match lines.next() {
        Some((_, Ok(line))) => line,
        Some((_, Err(e))) => {
            return Err(ParseTraceError {
                line: 1,
                message: format!("io error: {e}"),
            })
        }
        None => {
            return Err(ParseTraceError {
                line: 1,
                message: "empty file".to_string(),
            })
        }
    };
    let columns: Vec<String> = header
        .split(',')
        .map(|c| c.trim().to_ascii_lowercase())
        .collect();
    let input_col = columns.iter().position(|c| c == "input_len");
    let output_col = columns.iter().position(|c| c == "output_len");
    let (Some(input_col), Some(output_col)) = (input_col, output_col) else {
        return Err(ParseTraceError {
            line: 1,
            message: format!("header must name input_len and output_len, got '{header}'"),
        });
    };
    let mut records = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line.map_err(|e| ParseTraceError {
            line: line_no,
            message: format!("io error: {e}"),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        let field = |col: usize, name: &str| -> Result<u32, ParseTraceError> {
            let raw = fields.get(col).ok_or_else(|| ParseTraceError {
                line: line_no,
                message: format!("missing {name} column"),
            })?;
            raw.trim().parse().map_err(|_| ParseTraceError {
                line: line_no,
                message: format!("invalid {name} value '{raw}'"),
            })
        };
        records.push(TraceRecord {
            input_len: field(input_col, "input_len")?,
            output_len: field(output_col, "output_len")?,
        });
    }
    Ok(records)
}

/// Writes a trace in the canonical `input_len,output_len` schema.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace_csv<W: Write>(mut writer: W, records: &[TraceRecord]) -> std::io::Result<()> {
    writeln!(writer, "input_len,output_len")?;
    for record in records {
        writeln!(writer, "{},{}", record.input_len, record.output_len)?;
    }
    Ok(())
}

/// Converts trace records into simulator requests.
///
/// `max_new_tokens` caps the generation exactly as the serving system
/// would; records whose output exceeds the cap are clamped (the real
/// system would have cut them off too). Records with zero output are
/// dropped (log-style traces occasionally contain aborted requests).
pub fn requests_from_records(records: &[TraceRecord], max_new_tokens: u32) -> Vec<RequestSpec> {
    records
        .iter()
        .filter(|r| r.output_len > 0)
        .enumerate()
        .map(|(i, r)| {
            RequestSpec::new(
                i as u64,
                r.input_len,
                r.output_len.min(max_new_tokens),
                max_new_tokens,
            )
        })
        .collect()
}

/// Extracts records from generated requests (round-trip with
/// [`requests_from_records`]).
pub fn records_from_requests(requests: &[RequestSpec]) -> Vec<TraceRecord> {
    requests
        .iter()
        .map(|r| TraceRecord {
            input_len: r.input_len,
            output_len: r.true_output_len,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn parse_minimal_csv() {
        let csv = "input_len,output_len\n10,20\n30,40\n";
        let records = read_trace_csv(csv.as_bytes()).unwrap();
        assert_eq!(
            records,
            vec![
                TraceRecord {
                    input_len: 10,
                    output_len: 20
                },
                TraceRecord {
                    input_len: 30,
                    output_len: 40
                },
            ]
        );
    }

    #[test]
    fn parse_reordered_and_extra_columns() {
        let csv = "timestamp,output_len,model,input_len\n1.5,99,gpt,7\n";
        let records = read_trace_csv(csv.as_bytes()).unwrap();
        assert_eq!(
            records,
            vec![TraceRecord {
                input_len: 7,
                output_len: 99
            }]
        );
    }

    #[test]
    fn parse_skips_blank_lines_and_trims() {
        let csv = "input_len , output_len\n 10 , 20 \n\n30,40\n";
        let records = read_trace_csv(csv.as_bytes()).unwrap();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn parse_errors_are_located() {
        let bad_header = read_trace_csv("foo,bar\n1,2\n".as_bytes()).unwrap_err();
        assert_eq!(bad_header.line, 1);
        let bad_value = read_trace_csv("input_len,output_len\n1,x\n".as_bytes()).unwrap_err();
        assert_eq!(bad_value.line, 2);
        assert!(bad_value.to_string().contains("invalid output_len"));
        let short_row = read_trace_csv("input_len,output_len\n5\n".as_bytes()).unwrap_err();
        assert!(short_row.message.contains("missing output_len"));
        let empty = read_trace_csv("".as_bytes()).unwrap_err();
        assert!(empty.message.contains("empty"));
    }

    #[test]
    fn roundtrip_through_csv() {
        let requests = datasets::sharegpt(50, 1);
        let records = records_from_requests(&requests);
        let mut buffer = Vec::new();
        write_trace_csv(&mut buffer, &records).unwrap();
        let parsed = read_trace_csv(buffer.as_slice()).unwrap();
        assert_eq!(parsed, records);
        let rebuilt = requests_from_records(&parsed, 2048);
        assert_eq!(rebuilt.len(), requests.len());
        for (a, b) in rebuilt.iter().zip(&requests) {
            assert_eq!(a.input_len, b.input_len);
            assert_eq!(a.true_output_len, b.true_output_len);
        }
    }

    #[test]
    fn conversion_clamps_and_drops() {
        let records = [
            TraceRecord {
                input_len: 10,
                output_len: 5000,
            },
            TraceRecord {
                input_len: 10,
                output_len: 0,
            },
            TraceRecord {
                input_len: 10,
                output_len: 7,
            },
        ];
        let requests = requests_from_records(&records, 2048);
        assert_eq!(requests.len(), 2, "zero-output record dropped");
        assert_eq!(requests[0].true_output_len, 2048, "over-cap output clamped");
        assert_eq!(requests[1].true_output_len, 7);
        // Ids are re-assigned densely.
        assert_eq!(requests[1].id.raw(), 1);
    }
}
