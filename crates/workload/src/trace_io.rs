//! Reading and writing request traces as CSV.
//!
//! The similarity study (Figures 3/4) and the Past-Future history window
//! only need `(arrival_order, input_len, output_len)` per request — the
//! schema below is a minimal common denominator of public traces such as
//! BurstGPT (`Timestamp, Model, Request tokens, Response tokens, ...`).
//! Users with access to real traces can export them to this schema and run
//! every experiment in this workspace on them; the synthetic generators in
//! [`crate::trace`] exist only because the real traces cannot be shipped.
//!
//! Format: a header line
//! `input_len,output_len,prefix_id,prefix_len,arrival_us,deadline_us`
//! followed by one
//! record per request in arrival order. Extra columns are ignored on
//! import; column order is taken from the header.
//!
//! # Arrival column (backward-compatible)
//!
//! `arrival_us` carries the request's arrival timestamp in microseconds
//! from trace start, letting a trace drive the timed cluster runners
//! (`bench --bin trace_replay` round-trips a generated workload through
//! this column and replays it through the elastic and disaggregated
//! clusters deterministically). Like the prefix columns it is **optional
//! on import** — traces without it parse as before with no timestamps —
//! and an empty field means "no timestamp". `deadline_us` likewise
//! carries the optional per-request cancellation deadline
//! ([`RequestSpec::with_deadline`]) so a trace recorded from a
//! deadline-carrying workload replays with the same timeout behavior;
//! absent or empty (or zero) means "no deadline".
//!
//! # Prefix columns (backward-compatible)
//!
//! `prefix_id` and `prefix_len` carry the shared-prefix structure that
//! KV-aware prefix-affinity routing consumes (see
//! [`crate::datasets::multi_turn_chat`]): `prefix_id` names the session or
//! system-prompt prefix the request extends, and `prefix_len` is how many
//! of the request's leading prompt tokens repeat it. Both columns are
//! **optional on import**: traces written before these columns existed —
//! or any export that omits them — parse exactly as before, defaulting
//! every record to no prefix (`prefix_id` empty, `prefix_len` 0). An empty
//! `prefix_id` field means "no shared prefix"; `prefix_len` is only
//! meaningful alongside a non-empty `prefix_id`.

use std::io::{BufRead, BufReader, Read, Write};

use pf_metrics::{SimDuration, SimTime};

use crate::request::RequestSpec;

/// A minimal trace record: one request's input and output lengths (plus
/// optional shared-prefix structure and arrival timestamp), in arrival
/// order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TraceRecord {
    /// Prompt length in tokens.
    pub input_len: u32,
    /// Output length in tokens.
    pub output_len: u32,
    /// Shared prefix the request extends (`None` for prefix-free traffic
    /// and for traces without the column).
    pub prefix_id: Option<u64>,
    /// Leading prompt tokens repeating the prefix (0 without a prefix).
    pub prefix_len: u32,
    /// Arrival timestamp in microseconds from trace start (`None` for
    /// traces without the column).
    pub arrival_us: Option<u64>,
    /// Cancellation deadline in microseconds from arrival (`None` for
    /// deadline-free requests and traces without the column).
    pub deadline_us: Option<u64>,
}

/// Error raised while parsing a trace CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTraceError {
    /// 1-based line number of the offending record.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl std::fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace csv line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseTraceError {}

/// Parses a trace from CSV with an `input_len,output_len` header.
///
/// Column order is taken from the header (case-insensitive names
/// `input_len`/`output_len`; additional columns are ignored), so BurstGPT
/// exports with extra metadata columns work unchanged.
///
/// # Errors
///
/// Returns [`ParseTraceError`] for a missing/invalid header, non-numeric
/// fields, or rows with too few columns. I/O errors are reported on the
/// offending line.
///
/// # Example
///
/// ```
/// use pf_workload::trace_io::read_trace_csv;
///
/// let csv = "input_len,output_len\n120,480\n88,32\n";
/// let records = read_trace_csv(csv.as_bytes())?;
/// assert_eq!(records.len(), 2);
/// assert_eq!(records[0].output_len, 480);
/// # Ok::<(), pf_workload::trace_io::ParseTraceError>(())
/// ```
pub fn read_trace_csv<R: Read>(reader: R) -> Result<Vec<TraceRecord>, ParseTraceError> {
    let mut lines = BufReader::new(reader).lines().enumerate();
    let header = match lines.next() {
        Some((_, Ok(line))) => line,
        Some((_, Err(e))) => {
            return Err(ParseTraceError {
                line: 1,
                message: format!("io error: {e}"),
            })
        }
        None => {
            return Err(ParseTraceError {
                line: 1,
                message: "empty file".to_string(),
            })
        }
    };
    let columns: Vec<String> = header
        .split(',')
        .map(|c| c.trim().to_ascii_lowercase())
        .collect();
    let input_col = columns.iter().position(|c| c == "input_len");
    let output_col = columns.iter().position(|c| c == "output_len");
    let (Some(input_col), Some(output_col)) = (input_col, output_col) else {
        return Err(ParseTraceError {
            line: 1,
            message: format!("header must name input_len and output_len, got '{header}'"),
        });
    };
    // Optional prefix/arrival columns: absent in older traces, which
    // default to prefix-free, untimed records (see the module docs).
    let prefix_id_col = columns.iter().position(|c| c == "prefix_id");
    let prefix_len_col = columns.iter().position(|c| c == "prefix_len");
    let arrival_col = columns.iter().position(|c| c == "arrival_us");
    let deadline_col = columns.iter().position(|c| c == "deadline_us");
    let mut records = Vec::new();
    for (idx, line) in lines {
        let line_no = idx + 1;
        let line = line.map_err(|e| ParseTraceError {
            line: line_no,
            message: format!("io error: {e}"),
        })?;
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        let field = |col: usize, name: &str| -> Result<u32, ParseTraceError> {
            let raw = fields.get(col).ok_or_else(|| ParseTraceError {
                line: line_no,
                message: format!("missing {name} column"),
            })?;
            raw.trim().parse().map_err(|_| ParseTraceError {
                line: line_no,
                message: format!("invalid {name} value '{raw}'"),
            })
        };
        // An empty prefix_id field means "no shared prefix"; a row in a
        // prefix-aware trace may also simply be shorter than the prefix
        // columns (defaults apply).
        let prefix_id = match prefix_id_col.and_then(|col| fields.get(col)) {
            Some(raw) if !raw.trim().is_empty() => {
                Some(raw.trim().parse().map_err(|_| ParseTraceError {
                    line: line_no,
                    message: format!("invalid prefix_id value '{raw}'"),
                })?)
            }
            _ => None,
        };
        let prefix_len = match prefix_len_col.and_then(|col| fields.get(col)) {
            Some(raw) if !raw.trim().is_empty() => {
                raw.trim().parse().map_err(|_| ParseTraceError {
                    line: line_no,
                    message: format!("invalid prefix_len value '{raw}'"),
                })?
            }
            _ => 0,
        };
        let optional_u64 =
            |col: Option<usize>, name: &str| -> Result<Option<u64>, ParseTraceError> {
                match col.and_then(|col| fields.get(col)) {
                    Some(raw) if !raw.trim().is_empty() => {
                        Ok(Some(raw.trim().parse().map_err(|_| ParseTraceError {
                            line: line_no,
                            message: format!("invalid {name} value '{raw}'"),
                        })?))
                    }
                    _ => Ok(None),
                }
            };
        let arrival_us = optional_u64(arrival_col, "arrival_us")?;
        let deadline_us = optional_u64(deadline_col, "deadline_us")?;
        records.push(TraceRecord {
            input_len: field(input_col, "input_len")?,
            output_len: field(output_col, "output_len")?,
            prefix_id,
            prefix_len,
            arrival_us,
            deadline_us,
        });
    }
    Ok(records)
}

/// Writes a trace in the canonical
/// `input_len,output_len,prefix_id,prefix_len,arrival_us,deadline_us`
/// schema (prefix-free records leave the `prefix_id` field empty; untimed
/// records leave `arrival_us` empty; deadline-free records leave
/// `deadline_us` empty).
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_trace_csv<W: Write>(mut writer: W, records: &[TraceRecord]) -> std::io::Result<()> {
    writeln!(
        writer,
        "input_len,output_len,prefix_id,prefix_len,arrival_us,deadline_us"
    )?;
    for record in records {
        let opt = |v: Option<u64>| v.map_or(String::new(), |t| t.to_string());
        let prefix_id = record.prefix_id.map_or(String::new(), |id| id.to_string());
        writeln!(
            writer,
            "{},{},{},{},{},{}",
            record.input_len,
            record.output_len,
            prefix_id,
            record.prefix_len,
            opt(record.arrival_us),
            opt(record.deadline_us)
        )?;
    }
    Ok(())
}

/// Converts trace records into simulator requests.
///
/// `max_new_tokens` caps the generation exactly as the serving system
/// would; records whose output exceeds the cap are clamped (the real
/// system would have cut them off too). Records with zero output are
/// dropped (log-style traces occasionally contain aborted requests).
/// Prefix structure and deadlines carry over; a `prefix_len` exceeding
/// the prompt is clamped to it, and a zero `deadline_us` (which could
/// never be met) is treated as no deadline — both defensive against
/// hand-edited traces.
pub fn requests_from_records(records: &[TraceRecord], max_new_tokens: u32) -> Vec<RequestSpec> {
    records
        .iter()
        .filter(|r| r.output_len > 0)
        .enumerate()
        .map(|(i, r)| {
            let mut spec = RequestSpec::new(
                i as u64,
                r.input_len,
                r.output_len.min(max_new_tokens),
                max_new_tokens,
            );
            if let Some(id) = r.prefix_id {
                spec = spec.with_prefix(id, r.prefix_len.min(r.input_len));
            }
            if let Some(us) = r.deadline_us.filter(|&us| us > 0) {
                spec = spec.with_deadline(SimDuration::from_micros(us));
            }
            spec
        })
        .collect()
}

/// Extracts records from generated requests (round-trip with
/// [`requests_from_records`]).
pub fn records_from_requests(requests: &[RequestSpec]) -> Vec<TraceRecord> {
    requests
        .iter()
        .map(|r| TraceRecord {
            input_len: r.input_len,
            output_len: r.true_output_len,
            prefix_id: r.prefix_id.map(|p| p.raw()),
            prefix_len: r.prefix_len,
            arrival_us: None,
            deadline_us: r.deadline.map(|d| d.as_micros()),
        })
        .collect()
}

/// Extracts records carrying arrival timestamps from a timed workload
/// (round-trip with [`requests_from_records`] +
/// [`arrival_times_from_records`]) — the export half of trace replay.
///
/// # Panics
///
/// Panics if `requests.len() != arrival_times.len()`.
pub fn records_from_timed_requests(
    requests: &[RequestSpec],
    arrival_times: &[SimTime],
) -> Vec<TraceRecord> {
    assert_eq!(
        requests.len(),
        arrival_times.len(),
        "one arrival time per request"
    );
    let mut records = records_from_requests(requests);
    for (record, at) in records.iter_mut().zip(arrival_times) {
        record.arrival_us = Some(at.as_micros());
    }
    records
}

/// Arrival times of a timed trace, or `None` when any record lacks the
/// `arrival_us` column (an untimed trace — callers fall back to synthetic
/// arrivals). Timestamps are returned in record order; the cluster
/// runners assert monotonicity, exactly as they do for generated streams.
/// Records dropped by [`requests_from_records`] (zero-output rows) are
/// skipped here too, so the two vectors stay aligned.
pub fn arrival_times_from_records(records: &[TraceRecord]) -> Option<Vec<SimTime>> {
    records
        .iter()
        .filter(|r| r.output_len > 0)
        .map(|r| r.arrival_us.map(SimTime::from_micros))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets;

    #[test]
    fn parse_minimal_csv() {
        let csv = "input_len,output_len\n10,20\n30,40\n";
        let records = read_trace_csv(csv.as_bytes()).unwrap();
        assert_eq!(
            records,
            vec![
                TraceRecord {
                    input_len: 10,
                    output_len: 20,
                    ..TraceRecord::default()
                },
                TraceRecord {
                    input_len: 30,
                    output_len: 40,
                    ..TraceRecord::default()
                },
            ]
        );
    }

    #[test]
    fn parse_reordered_and_extra_columns() {
        let csv = "timestamp,output_len,model,input_len\n1.5,99,gpt,7\n";
        let records = read_trace_csv(csv.as_bytes()).unwrap();
        assert_eq!(
            records,
            vec![TraceRecord {
                input_len: 7,
                output_len: 99,
                ..TraceRecord::default()
            }]
        );
    }

    #[test]
    fn parse_skips_blank_lines_and_trims() {
        let csv = "input_len , output_len\n 10 , 20 \n\n30,40\n";
        let records = read_trace_csv(csv.as_bytes()).unwrap();
        assert_eq!(records.len(), 2);
    }

    #[test]
    fn parse_errors_are_located() {
        let bad_header = read_trace_csv("foo,bar\n1,2\n".as_bytes()).unwrap_err();
        assert_eq!(bad_header.line, 1);
        let bad_value = read_trace_csv("input_len,output_len\n1,x\n".as_bytes()).unwrap_err();
        assert_eq!(bad_value.line, 2);
        assert!(bad_value.to_string().contains("invalid output_len"));
        let short_row = read_trace_csv("input_len,output_len\n5\n".as_bytes()).unwrap_err();
        assert!(short_row.message.contains("missing output_len"));
        let empty = read_trace_csv("".as_bytes()).unwrap_err();
        assert!(empty.message.contains("empty"));
    }

    #[test]
    fn old_schema_defaults_to_no_prefix() {
        // Pre-prefix traces (no prefix columns) parse unchanged.
        let csv = "input_len,output_len\n10,20\n";
        let records = read_trace_csv(csv.as_bytes()).unwrap();
        assert_eq!(records[0].prefix_id, None);
        assert_eq!(records[0].prefix_len, 0);
    }

    #[test]
    fn prefix_columns_parse_and_roundtrip() {
        let csv = "input_len,output_len,prefix_id,prefix_len\n300,40,7,250\n80,10,,0\n";
        let records = read_trace_csv(csv.as_bytes()).unwrap();
        assert_eq!(records[0].prefix_id, Some(7));
        assert_eq!(records[0].prefix_len, 250);
        assert_eq!(records[1].prefix_id, None);
        let mut buffer = Vec::new();
        write_trace_csv(&mut buffer, &records).unwrap();
        assert_eq!(read_trace_csv(buffer.as_slice()).unwrap(), records);
        // Conversion carries the prefix into the request spec.
        let requests = requests_from_records(&records, 512);
        assert_eq!(requests[0].prefix_id.map(|p| p.raw()), Some(7));
        assert_eq!(requests[0].prefix_len, 250);
        assert_eq!(requests[1].prefix_id, None);
    }

    #[test]
    fn invalid_prefix_values_are_located() {
        let bad_id =
            read_trace_csv("input_len,output_len,prefix_id,prefix_len\n1,2,x,0\n".as_bytes())
                .unwrap_err();
        assert_eq!(bad_id.line, 2);
        assert!(bad_id.message.contains("invalid prefix_id"));
        let bad_len =
            read_trace_csv("input_len,output_len,prefix_id,prefix_len\n1,2,3,-1\n".as_bytes())
                .unwrap_err();
        assert!(bad_len.message.contains("invalid prefix_len"));
    }

    #[test]
    fn arrival_column_parses_and_roundtrips() {
        let csv =
            "input_len,output_len,prefix_id,prefix_len,arrival_us\n10,20,,0,1500000\n30,40,,0,\n";
        let records = read_trace_csv(csv.as_bytes()).unwrap();
        assert_eq!(records[0].arrival_us, Some(1_500_000));
        assert_eq!(records[1].arrival_us, None);
        let mut buffer = Vec::new();
        write_trace_csv(&mut buffer, &records).unwrap();
        assert_eq!(read_trace_csv(buffer.as_slice()).unwrap(), records);
        // A record without a timestamp makes the trace untimed.
        assert_eq!(arrival_times_from_records(&records), None);
    }

    #[test]
    fn timed_requests_roundtrip_exactly() {
        let requests = datasets::short_chat(40, 9);
        let arrivals: Vec<SimTime> = (0..40)
            .map(|i| SimTime::from_micros(123_457 * i as u64))
            .collect();
        let records = records_from_timed_requests(&requests, &arrivals);
        let mut buffer = Vec::new();
        write_trace_csv(&mut buffer, &records).unwrap();
        let parsed = read_trace_csv(buffer.as_slice()).unwrap();
        assert_eq!(parsed, records);
        let rebuilt_arrivals = arrival_times_from_records(&parsed).expect("timed trace");
        assert_eq!(rebuilt_arrivals, arrivals, "microsecond-exact round trip");
        let rebuilt = requests_from_records(&parsed, 512);
        assert_eq!(rebuilt, requests, "short_chat uses one max_new_tokens cap");
    }

    #[test]
    fn deadline_column_parses_converts_and_roundtrips() {
        let csv = "input_len,output_len,prefix_id,prefix_len,arrival_us,deadline_us\n\
                   100,20,,0,0,30000000\n100,20,,0,1000,\n100,20,,0,2000,0\n";
        let records = read_trace_csv(csv.as_bytes()).unwrap();
        assert_eq!(records[0].deadline_us, Some(30_000_000));
        assert_eq!(records[1].deadline_us, None);
        let mut buffer = Vec::new();
        write_trace_csv(&mut buffer, &records).unwrap();
        assert_eq!(read_trace_csv(buffer.as_slice()).unwrap(), records);
        let requests = requests_from_records(&records, 64);
        assert_eq!(requests[0].deadline, Some(SimDuration::from_secs(30)));
        assert_eq!(requests[1].deadline, None);
        assert_eq!(
            requests[2].deadline, None,
            "a zero deadline is sanitized away, not panicked on"
        );
        // And back out: extraction preserves the deadline.
        let back = records_from_requests(&requests);
        assert_eq!(back[0].deadline_us, Some(30_000_000));
        assert_eq!(back[1].deadline_us, None);
    }

    #[test]
    fn invalid_arrival_value_is_located() {
        let bad =
            read_trace_csv("input_len,output_len,arrival_us\n1,2,soon\n".as_bytes()).unwrap_err();
        assert_eq!(bad.line, 2);
        assert!(bad.message.contains("invalid arrival_us"));
    }

    #[test]
    fn arrival_times_skip_dropped_records() {
        let records = vec![
            TraceRecord {
                input_len: 10,
                output_len: 5,
                arrival_us: Some(0),
                ..TraceRecord::default()
            },
            TraceRecord {
                input_len: 10,
                output_len: 0, // dropped by requests_from_records
                arrival_us: Some(50),
                ..TraceRecord::default()
            },
            TraceRecord {
                input_len: 10,
                output_len: 7,
                arrival_us: Some(100),
                ..TraceRecord::default()
            },
        ];
        let requests = requests_from_records(&records, 64);
        let arrivals = arrival_times_from_records(&records).expect("timed");
        assert_eq!(requests.len(), arrivals.len());
        assert_eq!(arrivals, vec![SimTime::ZERO, SimTime::from_micros(100)]);
    }

    #[test]
    fn multi_turn_sessions_roundtrip_through_csv() {
        let requests = datasets::multi_turn_chat(60, 5);
        let records = records_from_requests(&requests);
        let mut buffer = Vec::new();
        write_trace_csv(&mut buffer, &records).unwrap();
        let parsed = read_trace_csv(buffer.as_slice()).unwrap();
        assert_eq!(parsed, records);
        let rebuilt = requests_from_records(&parsed, 512);
        for (a, b) in rebuilt.iter().zip(&requests) {
            assert_eq!(a.prefix_id, b.prefix_id);
            assert_eq!(a.prefix_len, b.prefix_len);
        }
    }

    #[test]
    fn roundtrip_through_csv() {
        let requests = datasets::sharegpt(50, 1);
        let records = records_from_requests(&requests);
        let mut buffer = Vec::new();
        write_trace_csv(&mut buffer, &records).unwrap();
        let parsed = read_trace_csv(buffer.as_slice()).unwrap();
        assert_eq!(parsed, records);
        let rebuilt = requests_from_records(&parsed, 2048);
        assert_eq!(rebuilt.len(), requests.len());
        for (a, b) in rebuilt.iter().zip(&requests) {
            assert_eq!(a.input_len, b.input_len);
            assert_eq!(a.true_output_len, b.true_output_len);
        }
    }

    #[test]
    fn conversion_clamps_and_drops() {
        let records = [
            TraceRecord {
                input_len: 10,
                output_len: 5000,
                ..TraceRecord::default()
            },
            TraceRecord {
                input_len: 10,
                output_len: 0,
                ..TraceRecord::default()
            },
            TraceRecord {
                input_len: 10,
                output_len: 7,
                ..TraceRecord::default()
            },
        ];
        let requests = requests_from_records(&records, 2048);
        assert_eq!(requests.len(), 2, "zero-output record dropped");
        assert_eq!(requests[0].true_output_len, 2048, "over-cap output clamped");
        assert_eq!(requests[1].true_output_len, 7);
        // Ids are re-assigned densely.
        assert_eq!(requests[1].id.raw(), 1);
    }
}
