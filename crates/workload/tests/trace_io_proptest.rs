//! Property tests for trace CSV I/O: `write_trace_csv ∘ read_trace_csv`
//! is the identity over arbitrary traces, and malformed rows fail with
//! correctly located errors.

use pf_workload::trace_io::{
    read_trace_csv, records_from_requests, requests_from_records, write_trace_csv, TraceRecord,
};
use proptest::prelude::*;

fn records_strategy() -> impl Strategy<Value = Vec<TraceRecord>> {
    proptest::collection::vec(
        (
            0u32..100_000,
            0u32..100_000,
            // Two in three records carry a session prefix (the offline
            // proptest shim has no `option::of`).
            0u64..3_000,
            0u32..100_000,
            // Half the records carry an arrival timestamp; a third carry
            // a (nonzero) deadline.
            0u64..10_000_000_000,
            1u64..600_000_000,
        )
            .prop_map(
                |(input_len, output_len, prefix_raw, prefix_len, arrival_raw, deadline_raw)| {
                    let prefix_id = (prefix_raw % 3 != 0).then_some(prefix_raw);
                    TraceRecord {
                        input_len,
                        output_len,
                        prefix_id,
                        // A prefix length is only meaningful alongside a prefix
                        // id and within the prompt.
                        prefix_len: if prefix_id.is_some() {
                            prefix_len.min(input_len)
                        } else {
                            0
                        },
                        arrival_us: (arrival_raw % 2 == 0).then_some(arrival_raw),
                        deadline_us: (deadline_raw % 3 == 0).then_some(deadline_raw),
                    }
                },
            ),
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Writing a trace and reading it back reproduces it exactly,
    /// including the empty trace and extreme lengths.
    #[test]
    fn write_then_read_is_identity(records in records_strategy()) {
        let mut buffer = Vec::new();
        write_trace_csv(&mut buffer, &records).expect("in-memory write");
        let parsed = read_trace_csv(buffer.as_slice()).expect("reparse own output");
        prop_assert_eq!(parsed, records);
    }

    /// The request-conversion round trip preserves lengths for every
    /// positive-output record (zero-output records are dropped by
    /// contract, over-cap outputs clamped).
    #[test]
    fn request_roundtrip_preserves_lengths(records in records_strategy()) {
        let cap = 1u32 << 20;
        let requests = requests_from_records(&records, cap);
        let survivors: Vec<&TraceRecord> =
            records.iter().filter(|r| r.output_len > 0).collect();
        prop_assert_eq!(requests.len(), survivors.len());
        for (request, record) in requests.iter().zip(survivors) {
            prop_assert_eq!(request.input_len, record.input_len);
            prop_assert_eq!(request.true_output_len, record.output_len.min(cap));
        }
        // And back: extracting records from the requests matches the
        // surviving records (cap chosen above any sampled output;
        // timestamps live outside RequestSpec, so the untimed extraction
        // drops them).
        let back = records_from_requests(&requests);
        let expected: Vec<TraceRecord> = records
            .iter()
            .filter(|r| r.output_len > 0)
            .copied()
            .map(|mut r| {
                r.arrival_us = None;
                r
            })
            .collect();
        prop_assert_eq!(back, expected);
    }

    /// A corrupted row fails parsing with the error located on exactly
    /// that line (1-based, counting the header).
    #[test]
    fn malformed_row_errors_point_at_the_line(
        records in proptest::collection::vec(
            (0u32..10_000, 0u32..10_000).prop_map(|(i, o)| TraceRecord {
                input_len: i,
                output_len: o,
                ..TraceRecord::default()
            }),
            1..40,
        ),
        corrupt_at in 0usize..40,
        kind in 0usize..3,
    ) {
        let corrupt_at = corrupt_at % records.len();
        let mut buffer = Vec::new();
        write_trace_csv(&mut buffer, &records).expect("in-memory write");
        let text = String::from_utf8(buffer).expect("ascii csv");
        let mut lines: Vec<&str> = text.lines().collect();
        let bad = match kind {
            0 => "not-a-number,7",
            1 => "12,minus-three",
            _ => "42", // too few columns
        };
        lines[1 + corrupt_at] = bad;
        let rejoined = lines.join("\n");
        let err = read_trace_csv(rejoined.as_bytes())
            .expect_err("corrupted row must fail");
        prop_assert_eq!(
            err.line,
            corrupt_at + 2,
            "error located at line {} for corruption on line {}: {}",
            err.line,
            corrupt_at + 2,
            err
        );
    }

    /// Column order and extra columns never change what is parsed: a
    /// BurstGPT-style export with shuffled metadata columns reads the
    /// same records.
    #[test]
    fn column_permutations_parse_identically(records in records_strategy()) {
        let mut shuffled = String::from(
            "timestamp,prefix_len,output_len,deadline_us,arrival_us,model,input_len,prefix_id\n",
        );
        for (i, r) in records.iter().enumerate() {
            let prefix_id = r.prefix_id.map_or(String::new(), |id| id.to_string());
            let arrival = r.arrival_us.map_or(String::new(), |t| t.to_string());
            let deadline = r.deadline_us.map_or(String::new(), |t| t.to_string());
            shuffled.push_str(&format!(
                "{}.5,{},{},{},{},m{},{},{}\n",
                i, r.prefix_len, r.output_len, deadline, arrival, i, r.input_len, prefix_id
            ));
        }
        let parsed = read_trace_csv(shuffled.as_bytes()).expect("permuted header");
        prop_assert_eq!(parsed, records);
    }

    /// Dropping the prefix columns entirely (a pre-prefix trace) parses
    /// the same lengths with prefix defaults.
    #[test]
    fn prefix_columns_are_optional(records in records_strategy()) {
        let mut legacy = String::from("input_len,output_len\n");
        for r in &records {
            legacy.push_str(&format!("{},{}\n", r.input_len, r.output_len));
        }
        let parsed = read_trace_csv(legacy.as_bytes()).expect("legacy schema");
        prop_assert_eq!(parsed.len(), records.len());
        for (p, r) in parsed.iter().zip(&records) {
            prop_assert_eq!(p.input_len, r.input_len);
            prop_assert_eq!(p.output_len, r.output_len);
            prop_assert_eq!(p.prefix_id, None);
            prop_assert_eq!(p.prefix_len, 0);
        }
    }
}
