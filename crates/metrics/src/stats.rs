//! Scalar summary statistics and percentiles.

use std::fmt;

/// Arithmetic mean of a slice; `0.0` for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Sample standard deviation (n-1 denominator); `0.0` for fewer than two
/// values.
pub fn std_dev(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    let var = values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / (values.len() - 1) as f64;
    var.sqrt()
}

/// Exact percentile by linear interpolation between order statistics.
///
/// `p` is in `[0, 100]`. NaN samples are skipped (a poisoned sample — a
/// `0/0` rate from an idle window, say — should not take down the whole
/// report); returns `None` when no non-NaN samples remain. The input does
/// not need to be sorted.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 100]` or not finite.
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    assert!(
        (0.0..=100.0).contains(&p) && p.is_finite(),
        "bad percentile {p}"
    );
    let mut sorted: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_unstable_by(f64::total_cmp);
    Some(percentile_sorted(&sorted, p))
}

/// [`percentile`] over a sample that is already sorted ascending and
/// NaN-free — the single-sort fast path for summaries that need several
/// percentiles of one sample.
fn percentile_sorted(sorted: &[f64], p: f64) -> f64 {
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        return sorted[lo];
    }
    let frac = rank - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Five-number-style summary of a sample: count, mean, standard deviation,
/// min, max, and the P50/P90/P99 percentiles.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl Summary {
    /// Summarizes a sample, skipping NaN values (see [`percentile`]).
    /// Returns the all-zero summary when no non-NaN samples remain.
    ///
    /// The sample is sorted once and every order statistic — min, max and
    /// the three percentiles — is read from that one sorted copy.
    pub fn of(values: &[f64]) -> Summary {
        let filtered: Vec<f64> = values.iter().copied().filter(|v| !v.is_nan()).collect();
        if filtered.is_empty() {
            return Summary::default();
        }
        // Mean and deviation fold in *input* order — float addition is not
        // order-independent, and reports must not change with sort order.
        let mean = mean(&filtered);
        let std_dev = std_dev(&filtered);
        let mut sorted = filtered;
        sorted.sort_unstable_by(f64::total_cmp);
        Summary {
            count: sorted.len(),
            mean,
            std_dev,
            min: sorted[0],
            max: sorted[sorted.len() - 1],
            p50: percentile_sorted(&sorted, 50.0),
            p90: percentile_sorted(&sorted, 90.0),
            p99: percentile_sorted(&sorted, 99.0),
        }
    }

    /// Summarizes an iterator of values.
    pub fn from_samples<I: IntoIterator<Item = f64>>(iter: I) -> Summary {
        let values: Vec<f64> = iter.into_iter().collect();
        Summary::of(&values)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} sd={:.3} min={:.3} p50={:.3} p90={:.3} p99={:.3} max={:.3}",
            self.count, self.mean, self.std_dev, self.min, self.p50, self.p90, self.p99, self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        let sd = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((sd - 2.138089935).abs() < 1e-6);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), Some(1.0));
        assert_eq!(percentile(&v, 100.0), Some(4.0));
        assert_eq!(percentile(&v, 50.0), Some(2.5));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    fn percentile_unsorted_input() {
        let v = [9.0, 1.0, 5.0];
        assert_eq!(percentile(&v, 50.0), Some(5.0));
    }

    #[test]
    fn p99_of_hundred() {
        let v: Vec<f64> = (1..=100).map(f64::from).collect();
        let p99 = percentile(&v, 99.0).unwrap();
        assert!((p99 - 99.01).abs() < 1e-9);
    }

    #[test]
    fn summary_of_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.p50, 3.0);
    }

    #[test]
    fn summary_empty_is_default() {
        assert_eq!(Summary::of(&[]), Summary::default());
    }

    #[test]
    #[should_panic(expected = "bad percentile")]
    fn percentile_out_of_range_panics() {
        let _ = percentile(&[1.0], 101.0);
    }

    #[test]
    fn percentile_skips_nan() {
        let v = [f64::NAN, 9.0, 1.0, f64::NAN, 5.0];
        assert_eq!(percentile(&v, 50.0), Some(5.0));
        assert_eq!(percentile(&[f64::NAN, f64::NAN], 50.0), None);
    }

    #[test]
    fn summary_skips_nan() {
        let s = Summary::of(&[f64::NAN, 1.0, 3.0, f64::NAN]);
        assert_eq!(s.count, 2);
        assert_eq!(s.mean, 2.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 3.0);
        assert_eq!(s.p50, 2.0);
        assert_eq!(Summary::of(&[f64::NAN]), Summary::default());
    }

    #[cfg(test)]
    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn percentile_within_bounds(
                v in proptest::collection::vec(-1e9f64..1e9, 1..200),
                p in 0.0f64..100.0,
            ) {
                let x = percentile(&v, p).unwrap();
                let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(x >= min - 1e-9 && x <= max + 1e-9);
            }

            #[test]
            fn percentile_monotone(
                v in proptest::collection::vec(-1e6f64..1e6, 1..100),
                p1 in 0.0f64..100.0,
                p2 in 0.0f64..100.0,
            ) {
                let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
                let a = percentile(&v, lo).unwrap();
                let b = percentile(&v, hi).unwrap();
                prop_assert!(a <= b + 1e-9);
            }

            #[test]
            fn mean_within_bounds(v in proptest::collection::vec(-1e9f64..1e9, 1..200)) {
                let m = mean(&v);
                let min = v.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = v.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(m >= min - 1e-6 && m <= max + 1e-6);
            }
        }
    }
}
