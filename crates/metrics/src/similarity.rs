//! Distribution similarity across time windows (paper Figures 3 and 4).
//!
//! The paper's core observation is that the output-length distribution of
//! *adjacent* request windows is similar even when the global distribution
//! drifts. [`WindowedLengths`] partitions a request trace into fixed-size
//! windows and [`SimilarityMatrix`] holds the pairwise cosine similarity of
//! their length histograms.

use crate::hist::{Binning, LengthHistogram};

/// Cosine similarity between two non-negative vectors.
///
/// Shorter vectors are implicitly zero-padded. Returns `0.0` when either
/// vector has zero norm.
///
/// # Example
///
/// ```
/// use pf_metrics::cosine_similarity;
///
/// assert!((cosine_similarity(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-12);
/// assert_eq!(cosine_similarity(&[1.0, 0.0], &[0.0, 1.0]), 0.0);
/// ```
pub fn cosine_similarity(a: &[f64], b: &[f64]) -> f64 {
    let mut dot = 0.0;
    let mut na = 0.0;
    let mut nb = 0.0;
    let n = a.len().max(b.len());
    for i in 0..n {
        let x = a.get(i).copied().unwrap_or(0.0);
        let y = b.get(i).copied().unwrap_or(0.0);
        dot += x * y;
        na += x * x;
        nb += y * y;
    }
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    dot / (na.sqrt() * nb.sqrt())
}

/// A request trace partitioned into non-overlapping windows of equal size,
/// with one length histogram per window.
#[derive(Debug, Clone)]
pub struct WindowedLengths {
    window_size: usize,
    histograms: Vec<LengthHistogram>,
}

impl WindowedLengths {
    /// Partitions `lengths` into `window_size`-sized windows (a trailing
    /// partial window is dropped, matching the paper's "1000 requests, no
    /// overlap" setup).
    ///
    /// # Panics
    ///
    /// Panics if `window_size` is zero.
    pub fn partition(lengths: &[u32], window_size: usize, binning: Binning) -> Self {
        assert!(window_size > 0, "window size must be positive");
        let histograms = lengths
            .chunks_exact(window_size)
            .map(|w| LengthHistogram::from_lengths(binning, w.iter().copied()))
            .collect();
        WindowedLengths {
            window_size,
            histograms,
        }
    }

    /// Window size used for partitioning.
    pub fn window_size(&self) -> usize {
        self.window_size
    }

    /// Number of complete windows.
    pub fn n_windows(&self) -> usize {
        self.histograms.len()
    }

    /// Histogram of window `i`.
    pub fn histogram(&self, i: usize) -> &LengthHistogram {
        &self.histograms[i]
    }

    /// Pairwise cosine similarity of all window histograms.
    pub fn similarity_matrix(&self) -> SimilarityMatrix {
        let probs: Vec<Vec<f64>> = self.histograms.iter().map(|h| h.probabilities()).collect();
        let n = probs.len();
        let mut values = vec![0.0; n * n];
        for i in 0..n {
            for j in i..n {
                let s = cosine_similarity(&probs[i], &probs[j]);
                values[i * n + j] = s;
                values[j * n + i] = s;
            }
        }
        SimilarityMatrix { n, values }
    }
}

/// Symmetric matrix of pairwise window similarities.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimilarityMatrix {
    n: usize,
    values: Vec<f64>,
}

impl SimilarityMatrix {
    /// Builds a matrix from row-major values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != n * n`.
    pub fn from_values(n: usize, values: Vec<f64>) -> Self {
        assert_eq!(values.len(), n * n, "matrix shape mismatch");
        SimilarityMatrix { n, values }
    }

    /// Matrix dimension (number of windows).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the matrix has no entries.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Similarity between windows `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics if `i` or `j` is out of bounds.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of bounds");
        self.values[i * self.n + j]
    }

    /// Mean similarity of adjacent windows: entries `(i, i+1)`.
    ///
    /// This is the paper's "diagonal" statistic. Returns `None` when there
    /// are fewer than two windows.
    pub fn diagonal_mean(&self) -> Option<f64> {
        diagonal_mean(self)
    }

    /// Mean similarity over all distinct pairs `(i, j)`, `i != j`.
    ///
    /// This is the paper's "global" statistic. Returns `None` when there are
    /// fewer than two windows.
    pub fn off_diagonal_mean(&self) -> Option<f64> {
        off_diagonal_mean(self)
    }
}

/// Mean similarity of adjacent windows (the matrix super-diagonal).
pub fn diagonal_mean(m: &SimilarityMatrix) -> Option<f64> {
    if m.n < 2 {
        return None;
    }
    let sum: f64 = (0..m.n - 1).map(|i| m.get(i, i + 1)).sum();
    Some(sum / (m.n - 1) as f64)
}

/// Mean similarity over all distinct window pairs.
pub fn off_diagonal_mean(m: &SimilarityMatrix) -> Option<f64> {
    if m.n < 2 {
        return None;
    }
    let mut sum = 0.0;
    let mut count = 0usize;
    for i in 0..m.n {
        for j in (i + 1)..m.n {
            sum += m.get(i, j);
            count += 1;
        }
    }
    Some(sum / count as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cosine_basics() {
        assert_eq!(cosine_similarity(&[], &[]), 0.0);
        assert_eq!(cosine_similarity(&[0.0], &[1.0]), 0.0);
        assert!((cosine_similarity(&[3.0, 4.0], &[3.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!((cosine_similarity(&[1.0, 1.0], &[1.0, 0.0]) - 1.0 / 2f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn cosine_pads_shorter_vector() {
        let s = cosine_similarity(&[1.0], &[1.0, 0.0, 0.0]);
        assert!((s - 1.0).abs() < 1e-12);
        let s2 = cosine_similarity(&[1.0], &[0.0, 1.0]);
        assert_eq!(s2, 0.0);
    }

    #[test]
    fn partition_drops_partial_window() {
        let lengths: Vec<u32> = (0..25).collect();
        let w = WindowedLengths::partition(&lengths, 10, Binning::Log2);
        assert_eq!(w.n_windows(), 2);
        assert_eq!(w.window_size(), 10);
        assert_eq!(w.histogram(0).total(), 10);
    }

    #[test]
    fn similarity_matrix_is_symmetric_with_unit_diag() {
        // Two alternating regimes: windows 0 and 2 match; 1 and 3 match.
        let mut lengths = Vec::new();
        for rep in 0..4 {
            let base = if rep % 2 == 0 { 10u32 } else { 1000 };
            lengths.extend(std::iter::repeat_n(base, 50));
        }
        let w = WindowedLengths::partition(&lengths, 50, Binning::Log2);
        let m = w.similarity_matrix();
        assert_eq!(m.len(), 4);
        for i in 0..4 {
            assert!((m.get(i, i) - 1.0).abs() < 1e-12);
            for j in 0..4 {
                assert_eq!(m.get(i, j), m.get(j, i));
            }
        }
        assert!((m.get(0, 2) - 1.0).abs() < 1e-12);
        assert!(m.get(0, 1) < 0.01);
    }

    #[test]
    fn diagonal_vs_global_stats() {
        // Slowly drifting regime: adjacent windows overlap, distant do not.
        let mut lengths = Vec::new();
        for step in 0..6u32 {
            for _ in 0..25 {
                lengths.push(100 + step * 50);
                lengths.push(100 + (step + 1) * 50);
            }
        }
        let w = WindowedLengths::partition(&lengths, 50, Binning::Linear { width: 50 });
        let m = w.similarity_matrix();
        let diag = m.diagonal_mean().unwrap();
        let glob = m.off_diagonal_mean().unwrap();
        assert!(
            diag > glob,
            "adjacent windows must beat global: {diag} vs {glob}"
        );
    }

    #[test]
    fn small_matrices_return_none() {
        let m = SimilarityMatrix::from_values(1, vec![1.0]);
        assert_eq!(m.diagonal_mean(), None);
        assert_eq!(m.off_diagonal_mean(), None);
        assert!(!m.is_empty());
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn cosine_in_unit_interval(
                a in proptest::collection::vec(0.0f64..1e6, 0..64),
                b in proptest::collection::vec(0.0f64..1e6, 0..64),
            ) {
                let s = cosine_similarity(&a, &b);
                prop_assert!((-1e-12..=1.0 + 1e-12).contains(&s));
            }

            #[test]
            fn cosine_symmetric(
                a in proptest::collection::vec(0.0f64..1e6, 0..64),
                b in proptest::collection::vec(0.0f64..1e6, 0..64),
            ) {
                prop_assert_eq!(cosine_similarity(&a, &b), cosine_similarity(&b, &a));
            }

            #[test]
            fn self_similarity_is_one(
                a in proptest::collection::vec(0.1f64..1e6, 1..64),
            ) {
                let s = cosine_similarity(&a, &a);
                prop_assert!((s - 1.0).abs() < 1e-9);
            }

            #[test]
            fn scale_invariance(
                a in proptest::collection::vec(0.0f64..1e3, 1..64),
                b in proptest::collection::vec(0.0f64..1e3, 1..64),
                k in 0.1f64..100.0,
            ) {
                let scaled: Vec<f64> = a.iter().map(|x| x * k).collect();
                let s1 = cosine_similarity(&a, &b);
                let s2 = cosine_similarity(&scaled, &b);
                prop_assert!((s1 - s2).abs() < 1e-9);
            }
        }
    }
}
