//! Minimal table formatting (markdown / CSV / aligned text).
//!
//! The experiment binaries print paper tables to stdout and persist them as
//! CSV without pulling in serialization dependencies.

use std::fmt::Write as _;

/// Column alignment for text rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (default).
    #[default]
    Left,
    /// Right-aligned, the usual choice for numbers.
    Right,
}

/// A simple rectangular table with a header row.
///
/// # Example
///
/// ```
/// use pf_metrics::Table;
///
/// let mut t = Table::new(["scheduler", "goodput"]);
/// t.row(["past-future", "812.4"]);
/// assert!(t.to_markdown().contains("| past-future | 812.4 |"));
/// assert_eq!(t.to_csv(), "scheduler,goodput\npast-future,812.4\n");
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<I, S>(header: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let header: Vec<String> = header.into_iter().map(Into::into).collect();
        let aligns = vec![Align::Left; header.len()];
        Table {
            header,
            rows: Vec::new(),
            aligns,
        }
    }

    /// Sets per-column alignment (text rendering only).
    ///
    /// # Panics
    ///
    /// Panics if the number of alignments differs from the number of columns.
    pub fn with_aligns(mut self, aligns: &[Align]) -> Self {
        assert_eq!(aligns.len(), self.header.len(), "alignment arity mismatch");
        self.aligns = aligns.to_vec();
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row arity differs from the header arity.
    pub fn row<I, S>(&mut self, cells: I) -> &mut Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.header.len(), "row arity mismatch");
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Renders as a GitHub-flavored markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders as CSV (RFC-4180-style quoting for cells containing commas,
    /// quotes, or newlines).
    pub fn to_csv(&self) -> String {
        fn quote(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| quote(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Renders as aligned plain text for terminal output.
    pub fn to_text(&self) -> String {
        let n = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let render_row = |cells: &[String]| -> String {
            let mut line = String::new();
            for i in 0..n {
                let cell = &cells[i];
                match self.aligns[i] {
                    Align::Left => {
                        let _ = write!(line, "{:<width$}", cell, width = widths[i]);
                    }
                    Align::Right => {
                        let _ = write!(line, "{:>width$}", cell, width = widths[i]);
                    }
                }
                if i + 1 != n {
                    line.push_str("  ");
                }
            }
            line
        };
        let mut out = render_row(&self.header);
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (n - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render_row(row));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(["name", "value"]).with_aligns(&[Align::Left, Align::Right]);
        t.row(["alpha", "1"]);
        t.row(["beta", "22"]);
        t
    }

    #[test]
    fn markdown_rendering() {
        let md = sample().to_markdown();
        assert!(md.starts_with("| name | value |\n|---|---|\n"));
        assert!(md.contains("| alpha | 1 |"));
    }

    #[test]
    fn csv_rendering_and_quoting() {
        let mut t = Table::new(["a", "b"]);
        t.row(["x,y", "he said \"hi\""]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"x,y\",\"he said \"\"hi\"\"\"\n");
    }

    #[test]
    fn text_alignment() {
        let text = sample().to_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "name   value");
        assert_eq!(lines[2], "alpha      1");
        assert_eq!(lines[3], "beta      22");
    }

    #[test]
    fn n_rows_counts() {
        assert_eq!(sample().n_rows(), 2);
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn wrong_arity_panics() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }
}
