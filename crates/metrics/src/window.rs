//! Sliding time windows over timestamped observations.
//!
//! The elastic-scaling planner (`pf-autoscale`) measures offered load as
//! *rates and means over a recent window*: request arrivals per second,
//! mean prompt length, mean output length, observed TTFT/TPOT. This module
//! provides the shared windowing primitive: an [`ObservationWindow`] keeps
//! `(time, value)` samples no older than a configured span and answers
//! count/rate/mean queries in O(1) amortized time.

use std::collections::VecDeque;

use crate::time::{SimDuration, SimTime};

/// A sliding window of timestamped scalar observations.
///
/// Samples are pushed in non-decreasing time order; samples older than
/// `span` before the most recent [`ObservationWindow::prune`] time are
/// discarded. The running sum is maintained incrementally so rate and mean
/// queries are O(1).
#[derive(Debug, Clone)]
pub struct ObservationWindow {
    span: SimDuration,
    samples: VecDeque<(SimTime, f64)>,
    sum: f64,
}

impl ObservationWindow {
    /// Creates a window keeping samples for `span` of simulated time.
    ///
    /// # Panics
    ///
    /// Panics if `span` is zero.
    pub fn new(span: SimDuration) -> Self {
        assert!(!span.is_zero(), "observation window span must be positive");
        ObservationWindow {
            span,
            samples: VecDeque::new(),
            sum: 0.0,
        }
    }

    /// The configured window span.
    pub fn span(&self) -> SimDuration {
        self.span
    }

    /// Records one observation.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` precedes the newest recorded sample.
    pub fn observe(&mut self, at: SimTime, value: f64) {
        debug_assert!(
            self.samples.back().is_none_or(|&(t, _)| t <= at),
            "observations must arrive in time order"
        );
        self.samples.push_back((at, value));
        self.sum += value;
    }

    /// Discards samples older than `now - span`.
    pub fn prune(&mut self, now: SimTime) {
        let cutoff = now.saturating_since(SimTime::ZERO) - self.span;
        while let Some(&(t, v)) = self.samples.front() {
            if t.saturating_since(SimTime::ZERO) < cutoff {
                self.samples.pop_front();
                self.sum -= v;
            } else {
                break;
            }
        }
        if self.samples.is_empty() {
            // Reset accumulated floating-point drift at natural boundaries.
            self.sum = 0.0;
        }
    }

    /// Number of samples currently in the window.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when the window holds no samples.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sum of the sample values in the window.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of the sample values, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(self.sum / self.samples.len() as f64)
        }
    }

    /// Observations per second over the window span (events whose values
    /// are irrelevant still count; prune first for an up-to-date answer).
    pub fn rate_per_s(&self) -> f64 {
        self.samples.len() as f64 / self.span.as_secs_f64()
    }

    /// Removes every sample.
    pub fn clear(&mut self) {
        self.samples.clear();
        self.sum = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn mean_and_sum_track_contents() {
        let mut w = ObservationWindow::new(SimDuration::from_secs(10));
        assert!(w.is_empty());
        assert_eq!(w.mean(), None);
        w.observe(secs(1), 2.0);
        w.observe(secs(2), 4.0);
        w.observe(secs(3), 6.0);
        assert_eq!(w.count(), 3);
        assert_eq!(w.sum(), 12.0);
        assert_eq!(w.mean(), Some(4.0));
    }

    #[test]
    fn prune_discards_old_samples() {
        let mut w = ObservationWindow::new(SimDuration::from_secs(5));
        for t in 0..10 {
            w.observe(secs(t), t as f64);
        }
        w.prune(secs(9));
        // Cutoff at t=4: samples 4..=9 remain.
        assert_eq!(w.count(), 6);
        assert_eq!(w.sum(), (4..10).sum::<u64>() as f64);
        w.prune(secs(100));
        assert!(w.is_empty());
        assert_eq!(w.sum(), 0.0);
    }

    #[test]
    fn rate_counts_events_over_span() {
        let mut w = ObservationWindow::new(SimDuration::from_secs(4));
        for t in 0..8 {
            w.observe(SimTime::from_millis(500 * t), 1.0);
        }
        w.prune(SimTime::from_millis(3500));
        // All 8 samples are within the last 4 s: 2 events/s.
        assert!((w.rate_per_s() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn early_prune_is_safe() {
        let mut w = ObservationWindow::new(SimDuration::from_secs(60));
        w.observe(secs(1), 1.0);
        // now < span: cutoff saturates to zero, nothing discarded.
        w.prune(secs(2));
        assert_eq!(w.count(), 1);
    }

    #[test]
    fn clear_resets() {
        let mut w = ObservationWindow::new(SimDuration::from_secs(1));
        w.observe(secs(0), 5.0);
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.sum(), 0.0);
    }

    #[test]
    #[should_panic(expected = "span must be positive")]
    fn zero_span_panics() {
        let _ = ObservationWindow::new(SimDuration::ZERO);
    }
}
