//! SLA accounting, goodput, histograms and similarity metrics for LLM serving
//! experiments.
//!
//! This crate is the measurement substrate of the Past-Future scheduler
//! reproduction. It owns the vocabulary types shared across the workspace:
//!
//! * [`SimTime`] / [`SimDuration`] — microsecond-resolution simulated time;
//! * [`SlaSpec`], [`RequestTiming`], [`SlaOutcome`] — per-request service
//!   level agreement evaluation (TTFT / TPOT / MTPOT, Section 2.5 of the
//!   paper);
//! * [`GoodputReport`] — throughput under SLA ("goodput"), the paper's main
//!   metric;
//! * [`LengthHistogram`] and [`cosine_similarity`] — output-length
//!   distribution comparison used by the "Past" half of the scheduler
//!   (Figures 3 and 4);
//! * [`StepSeries`] — step-weighted time series used for memory-utilization
//!   statistics (Figure 1, Table 1);
//! * [`ObservationWindow`] — sliding rate/length windows feeding the
//!   elastic-scaling planner's load observations;
//! * [`Summary`] and percentile helpers.
//!
//! # Example
//!
//! ```
//! use pf_metrics::{RequestTiming, SimTime, SlaSpec};
//!
//! let sla = SlaSpec::chat_7b(); // TTFT < 10 s, MTPOT < 1.5 s
//! let mut timing = RequestTiming::new(SimTime::ZERO);
//! timing.record_token(SimTime::from_secs_f64(0.5)); // first token
//! timing.record_token(SimTime::from_secs_f64(0.6));
//! let outcome = sla.evaluate(&timing);
//! assert!(outcome.is_satisfied());
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod hist;
mod series;
mod similarity;
mod sla;
mod stats;
mod table;
mod time;
mod window;

pub use hist::{Binning, LengthHistogram, ZeroBinWidth};
pub use series::{SeriesGroup, StepSeries};
pub use similarity::{
    cosine_similarity, diagonal_mean, off_diagonal_mean, SimilarityMatrix, WindowedLengths,
};
pub use sla::{GoodputReport, RequestTiming, SlaOutcome, SlaSpec, SlaViolation};
pub use stats::{mean, percentile, std_dev, Summary};
pub use table::{Align, Table};
pub use time::{SimDuration, SimTime};
pub use window::ObservationWindow;
