//! Service-level-agreement accounting (paper Section 2.5).
//!
//! The SLA metrics for streaming LLM serving are:
//!
//! * **TTFT** — time to first token (from request arrival);
//! * **TPOT** — time per output token (gap between consecutive tokens);
//! * **MTPOT** — the *maximum* TPOT within one request. A single long stall
//!   is user-visible even when the average TPOT looks fine, which is why the
//!   paper constrains MTPOT rather than mean TPOT.
//!
//! Throughput counted only over SLA-satisfying requests is **goodput**, the
//! paper's headline metric.

use crate::stats::Summary;
use crate::time::{SimDuration, SimTime};

/// SLA thresholds a request must satisfy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SlaSpec {
    /// Maximum allowed time to first token.
    pub max_ttft: SimDuration,
    /// Maximum allowed gap between consecutive output tokens.
    pub max_mtpot: SimDuration,
}

impl SlaSpec {
    /// Creates an SLA spec from explicit thresholds.
    pub const fn new(max_ttft: SimDuration, max_mtpot: SimDuration) -> Self {
        SlaSpec {
            max_ttft,
            max_mtpot,
        }
    }

    /// The paper's SLA for 7B/13B models: TTFT < 10 s, MTPOT < 1.5 s.
    pub const fn chat_7b() -> Self {
        SlaSpec::new(SimDuration::from_secs(10), SimDuration::from_millis(1_500))
    }

    /// The paper's SLA for the 70B model: TTFT < 15 s, MTPOT < 5 s.
    pub const fn chat_70b() -> Self {
        SlaSpec::new(SimDuration::from_secs(15), SimDuration::from_secs(5))
    }

    /// Evaluates a finished request against this SLA.
    pub fn evaluate(&self, timing: &RequestTiming) -> SlaOutcome {
        let Some(ttft) = timing.ttft() else {
            return SlaOutcome {
                violation: Some(SlaViolation::NoTokens),
            };
        };
        if ttft > self.max_ttft {
            return SlaOutcome {
                violation: Some(SlaViolation::Ttft {
                    actual: ttft,
                    limit: self.max_ttft,
                }),
            };
        }
        let mtpot = timing.mtpot();
        if mtpot > self.max_mtpot {
            return SlaOutcome {
                violation: Some(SlaViolation::Mtpot {
                    actual: mtpot,
                    limit: self.max_mtpot,
                }),
            };
        }
        SlaOutcome { violation: None }
    }
}

impl Default for SlaSpec {
    fn default() -> Self {
        SlaSpec::chat_7b()
    }
}

/// Per-request token timing, tracked incrementally in O(1) memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RequestTiming {
    arrival: SimTime,
    first_token: Option<SimTime>,
    last_token: SimTime,
    n_tokens: u64,
    max_gap: SimDuration,
    sum_gaps: SimDuration,
}

impl RequestTiming {
    /// Starts timing a request that arrived at `arrival`.
    pub fn new(arrival: SimTime) -> Self {
        RequestTiming {
            arrival,
            first_token: None,
            last_token: arrival,
            n_tokens: 0,
            max_gap: SimDuration::ZERO,
            sum_gaps: SimDuration::ZERO,
        }
    }

    /// Records the emission of one output token at time `at`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` precedes the previous token.
    pub fn record_token(&mut self, at: SimTime) {
        match self.first_token {
            None => {
                self.first_token = Some(at);
            }
            Some(_) => {
                let gap = at - self.last_token;
                self.max_gap = self.max_gap.max(gap);
                self.sum_gaps += gap;
            }
        }
        self.last_token = at;
        self.n_tokens += 1;
    }

    /// Arrival time of the request.
    pub fn arrival(&self) -> SimTime {
        self.arrival
    }

    /// Time to first token, if any token has been produced.
    pub fn ttft(&self) -> Option<SimDuration> {
        self.first_token.map(|t| t - self.arrival)
    }

    /// Maximum gap between consecutive tokens (zero with fewer than two
    /// tokens).
    pub fn mtpot(&self) -> SimDuration {
        self.max_gap
    }

    /// Mean gap between consecutive tokens (zero with fewer than two tokens).
    pub fn avg_tpot(&self) -> SimDuration {
        if self.n_tokens < 2 {
            SimDuration::ZERO
        } else {
            self.sum_gaps / (self.n_tokens - 1)
        }
    }

    /// Number of tokens recorded so far.
    pub fn n_tokens(&self) -> u64 {
        self.n_tokens
    }

    /// Time the last token was produced (arrival time if none yet).
    pub fn last_token_at(&self) -> SimTime {
        self.last_token
    }

    /// Completion latency: last token time minus arrival.
    pub fn total_latency(&self) -> SimDuration {
        self.last_token - self.arrival
    }
}

/// Result of evaluating one request against an [`SlaSpec`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SlaOutcome {
    /// The first violated constraint, or `None` when the SLA is satisfied.
    pub violation: Option<SlaViolation>,
}

impl SlaOutcome {
    /// True when every SLA constraint was met.
    pub fn is_satisfied(&self) -> bool {
        self.violation.is_none()
    }
}

/// A violated SLA constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum SlaViolation {
    /// The request finished without producing any token.
    NoTokens,
    /// First token arrived too late.
    Ttft {
        /// Observed time to first token.
        actual: SimDuration,
        /// Allowed maximum.
        limit: SimDuration,
    },
    /// Some inter-token gap was too long (output stall, e.g. after an
    /// eviction).
    Mtpot {
        /// Observed maximum inter-token gap.
        actual: SimDuration,
        /// Allowed maximum.
        limit: SimDuration,
    },
}

/// Counts of requests per violation kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ViolationCounts {
    /// Requests violating the TTFT bound.
    pub ttft: usize,
    /// Requests violating the MTPOT bound.
    pub mtpot: usize,
    /// Requests that produced no tokens.
    pub no_tokens: usize,
    /// Requests cancelled past their deadline — still waiting for a
    /// first token, or preempted mid-stream and never readmitted. They
    /// never completed, so they carry no timing samples (any tokens a
    /// preempted one streamed before cancellation do not count as
    /// delivered output) — but they are SLA misses and must weigh the
    /// attainment denominators (a system that cancels a doomed request
    /// must not *raise* its reported attainment by doing so).
    pub timed_out: usize,
}

/// Aggregate goodput/throughput report over a set of finished requests.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GoodputReport {
    /// Number of finished requests considered.
    pub total_requests: usize,
    /// Requests that satisfied the SLA.
    pub satisfied_requests: usize,
    /// Output tokens across all requests.
    pub total_output_tokens: u64,
    /// Output tokens across SLA-satisfying requests only.
    pub satisfied_output_tokens: u64,
    /// Wall-clock duration of the measurement interval.
    pub duration: SimDuration,
    /// Output tokens per second, all requests.
    pub throughput_tok_per_s: f64,
    /// Output tokens per second, SLA-satisfying requests only.
    pub goodput_tok_per_s: f64,
    /// TTFT distribution (seconds).
    pub ttft_secs: Summary,
    /// MTPOT distribution (seconds).
    pub mtpot_secs: Summary,
    /// Violation breakdown.
    pub violations: ViolationCounts,
}

impl GoodputReport {
    /// Computes goodput over finished requests.
    ///
    /// Each element of `requests` pairs the request's timing with its output
    /// token count. `duration` is the measurement interval (zero duration
    /// yields zero rates). Equivalent to
    /// [`GoodputReport::compute_with_timeouts`] with zero timed-out
    /// requests — use that variant when the run cancelled requests past
    /// their deadline, so they count as SLA misses instead of vanishing
    /// from the denominators.
    pub fn compute(
        sla: &SlaSpec,
        requests: &[(RequestTiming, u64)],
        duration: SimDuration,
    ) -> GoodputReport {
        GoodputReport::compute_with_timeouts(sla, requests, duration, 0)
    }

    /// [`GoodputReport::compute`] plus `timed_out` requests that were
    /// cancelled past their deadline (while waiting for a first token,
    /// or preempted mid-stream and never readmitted). They contribute no
    /// counted tokens and no timing samples, but they enter
    /// `total_requests`, `violations.timed_out`, and therefore the
    /// [`GoodputReport::satisfied_fraction`] and
    /// [`GoodputReport::ttft_attainment`] denominators as misses.
    ///
    /// The TTFT/MTPOT percentile summaries still describe *completed*
    /// requests only (a cancelled request has no latency to summarize), so
    /// [`GoodputReport::is_p99_compliant`] additionally requires that no
    /// request timed out.
    pub fn compute_with_timeouts(
        sla: &SlaSpec,
        requests: &[(RequestTiming, u64)],
        duration: SimDuration,
        timed_out: usize,
    ) -> GoodputReport {
        let mut satisfied_requests = 0;
        let mut total_output_tokens = 0;
        let mut satisfied_output_tokens = 0;
        let mut violations = ViolationCounts {
            timed_out,
            ..ViolationCounts::default()
        };
        let mut ttfts = Vec::with_capacity(requests.len());
        let mut mtpots = Vec::with_capacity(requests.len());
        for (timing, tokens) in requests {
            total_output_tokens += tokens;
            if let Some(ttft) = timing.ttft() {
                ttfts.push(ttft.as_secs_f64());
                mtpots.push(timing.mtpot().as_secs_f64());
            }
            match sla.evaluate(timing).violation {
                None => {
                    satisfied_requests += 1;
                    satisfied_output_tokens += tokens;
                }
                Some(SlaViolation::Ttft { .. }) => violations.ttft += 1,
                Some(SlaViolation::Mtpot { .. }) => violations.mtpot += 1,
                Some(SlaViolation::NoTokens) => violations.no_tokens += 1,
            }
        }
        let secs = duration.as_secs_f64();
        let rate = |tokens: u64| {
            if secs > 0.0 {
                tokens as f64 / secs
            } else {
                0.0
            }
        };
        GoodputReport {
            total_requests: requests.len() + timed_out,
            satisfied_requests,
            total_output_tokens,
            satisfied_output_tokens,
            duration,
            throughput_tok_per_s: rate(total_output_tokens),
            goodput_tok_per_s: rate(satisfied_output_tokens),
            ttft_secs: Summary::of(&ttfts),
            mtpot_secs: Summary::of(&mtpots),
            violations,
        }
    }

    /// Fraction of requests that satisfied the SLA (1.0 when empty).
    pub fn satisfied_fraction(&self) -> f64 {
        if self.total_requests == 0 {
            1.0
        } else {
            self.satisfied_requests as f64 / self.total_requests as f64
        }
    }

    /// Requests whose *TTFT* met the SLA, regardless of their TPOT
    /// outcome (aggregatable across instances — see
    /// [`GoodputReport::ttft_attainment`]). Timed-out requests never
    /// produced a first token, so they are excluded here (and counted in
    /// the denominator).
    pub fn ttft_ok_count(&self) -> usize {
        self.total_requests
            - self.violations.ttft
            - self.violations.no_tokens
            - self.violations.timed_out
    }

    /// Fraction of requests whose *TTFT* met the SLA, regardless of their
    /// TPOT outcome (1.0 when empty). Timed-out requests count as misses.
    ///
    /// This is the term a disaggregated prefill pool is sized against:
    /// requests violating only MTPOT still count as TTFT-attained, so the
    /// metric isolates first-token latency from decode-side stalls.
    pub fn ttft_attainment(&self) -> f64 {
        if self.total_requests == 0 {
            return 1.0;
        }
        self.ttft_ok_count() as f64 / self.total_requests as f64
    }

    /// System-level P99 compliance, the paper's Figure 9 framing
    /// ("P99 TTFT 10s, P99 MTPOT 1.5s"): true when the 99th percentiles of
    /// TTFT and MTPOT both stay within the SLA. Under this reading a
    /// compliant system's *entire* throughput counts as goodput; a
    /// non-compliant one scores zero. The percentiles summarize completed
    /// requests, so any timed-out (cancelled) request disqualifies the
    /// system outright — cancelling stragglers must not launder the tail.
    pub fn is_p99_compliant(&self, sla: &SlaSpec) -> bool {
        if self.total_requests == 0 {
            return true;
        }
        self.violations.timed_out == 0
            && self.ttft_secs.p99 <= sla.max_ttft.as_secs_f64()
            && self.mtpot_secs.p99 <= sla.max_mtpot.as_secs_f64()
    }

    /// Goodput under the system-level P99 interpretation (see
    /// [`GoodputReport::is_p99_compliant`]): full throughput when
    /// compliant, zero otherwise.
    pub fn p99_goodput_tok_per_s(&self, sla: &SlaSpec) -> f64 {
        if self.is_p99_compliant(sla) {
            self.throughput_tok_per_s
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn timing_tracks_ttft_and_gaps() {
        let mut t = RequestTiming::new(secs(1.0));
        assert_eq!(t.ttft(), None);
        t.record_token(secs(2.0));
        assert_eq!(t.ttft(), Some(SimDuration::from_secs(1)));
        assert_eq!(t.mtpot(), SimDuration::ZERO);
        t.record_token(secs(2.1));
        t.record_token(secs(2.9));
        assert_eq!(t.mtpot(), SimDuration::from_millis(800));
        assert_eq!(t.n_tokens(), 3);
        assert_eq!(t.avg_tpot(), SimDuration::from_millis(450));
        assert_eq!(t.total_latency(), SimDuration::from_millis(1_900));
    }

    #[test]
    fn sla_satisfied_fast_request() {
        let sla = SlaSpec::chat_7b();
        let mut t = RequestTiming::new(SimTime::ZERO);
        t.record_token(secs(0.5));
        t.record_token(secs(0.6));
        assert!(sla.evaluate(&t).is_satisfied());
    }

    #[test]
    fn sla_ttft_violation() {
        let sla = SlaSpec::chat_7b();
        let mut t = RequestTiming::new(SimTime::ZERO);
        t.record_token(secs(11.0));
        let outcome = sla.evaluate(&t);
        assert!(matches!(outcome.violation, Some(SlaViolation::Ttft { .. })));
    }

    #[test]
    fn sla_mtpot_violation_from_stall() {
        let sla = SlaSpec::chat_7b();
        let mut t = RequestTiming::new(SimTime::ZERO);
        t.record_token(secs(0.1));
        t.record_token(secs(0.2));
        t.record_token(secs(5.0)); // eviction-style stall
        let outcome = sla.evaluate(&t);
        assert!(matches!(
            outcome.violation,
            Some(SlaViolation::Mtpot { .. })
        ));
    }

    #[test]
    fn sla_no_tokens() {
        let sla = SlaSpec::chat_7b();
        let t = RequestTiming::new(SimTime::ZERO);
        assert_eq!(sla.evaluate(&t).violation, Some(SlaViolation::NoTokens));
    }

    #[test]
    fn ttft_exactly_at_limit_is_satisfied() {
        let sla = SlaSpec::new(SimDuration::from_secs(10), SimDuration::from_secs(10));
        let mut t = RequestTiming::new(SimTime::ZERO);
        t.record_token(secs(10.0));
        assert!(sla.evaluate(&t).is_satisfied());
    }

    #[test]
    fn goodput_counts_only_satisfied() {
        let sla = SlaSpec::chat_7b();
        let mut ok = RequestTiming::new(SimTime::ZERO);
        ok.record_token(secs(0.5));
        ok.record_token(secs(0.6));
        let mut bad = RequestTiming::new(SimTime::ZERO);
        bad.record_token(secs(20.0));
        let report =
            GoodputReport::compute(&sla, &[(ok, 100), (bad, 300)], SimDuration::from_secs(10));
        assert_eq!(report.total_requests, 2);
        assert_eq!(report.satisfied_requests, 1);
        assert_eq!(report.total_output_tokens, 400);
        assert_eq!(report.satisfied_output_tokens, 100);
        assert!((report.throughput_tok_per_s - 40.0).abs() < 1e-9);
        assert!((report.goodput_tok_per_s - 10.0).abs() < 1e-9);
        assert_eq!(report.violations.ttft, 1);
        assert!((report.satisfied_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ttft_attainment_ignores_mtpot_violations() {
        let sla = SlaSpec::chat_7b();
        // Fast first token, then a decode stall: MTPOT-violating but
        // TTFT-attained.
        let mut stalled = RequestTiming::new(SimTime::ZERO);
        stalled.record_token(secs(0.5));
        stalled.record_token(secs(8.0));
        // Late first token: TTFT-violating.
        let mut late = RequestTiming::new(SimTime::ZERO);
        late.record_token(secs(20.0));
        // Fully satisfied.
        let mut ok = RequestTiming::new(SimTime::ZERO);
        ok.record_token(secs(0.5));
        ok.record_token(secs(0.6));
        let report = GoodputReport::compute(
            &sla,
            &[(stalled, 10), (late, 10), (ok, 10)],
            SimDuration::from_secs(10),
        );
        assert_eq!(report.satisfied_requests, 1);
        assert!((report.ttft_attainment() - 2.0 / 3.0).abs() < 1e-12);
        let empty = GoodputReport::compute(&sla, &[], SimDuration::ZERO);
        assert_eq!(empty.ttft_attainment(), 1.0);
    }

    #[test]
    fn timed_out_requests_weigh_the_attainment_denominators() {
        let sla = SlaSpec::chat_7b();
        let mut ok = RequestTiming::new(SimTime::ZERO);
        ok.record_token(secs(0.5));
        ok.record_token(secs(0.6));
        let completed = [(ok, 100)];
        let without = GoodputReport::compute(&sla, &completed, SimDuration::from_secs(10));
        let with =
            GoodputReport::compute_with_timeouts(&sla, &completed, SimDuration::from_secs(10), 3);
        // Cancelling three doomed requests must *lower* attainment, not
        // leave it untouched (and certainly not raise it).
        assert_eq!(without.satisfied_fraction(), 1.0);
        assert_eq!(without.ttft_attainment(), 1.0);
        assert_eq!(with.total_requests, 4);
        assert_eq!(with.violations.timed_out, 3);
        assert!((with.satisfied_fraction() - 0.25).abs() < 1e-12);
        assert!((with.ttft_attainment() - 0.25).abs() < 1e-12);
        // Throughput counts tokens actually produced; timeouts add none.
        assert_eq!(with.total_output_tokens, 100);
        assert_eq!(with.goodput_tok_per_s, without.goodput_tok_per_s);
        // A run with cancellations can never be P99-compliant.
        assert!(without.is_p99_compliant(&sla));
        assert!(!with.is_p99_compliant(&sla));
    }

    #[test]
    fn goodput_zero_duration() {
        let report = GoodputReport::compute(&SlaSpec::chat_7b(), &[], SimDuration::ZERO);
        assert_eq!(report.goodput_tok_per_s, 0.0);
        assert_eq!(report.satisfied_fraction(), 1.0);
    }

    #[test]
    fn p99_compliance_all_or_nothing() {
        let sla = SlaSpec::chat_7b();
        // 100 fast requests: compliant, full throughput counts.
        let fast: Vec<(RequestTiming, u64)> = (0..100)
            .map(|_| {
                let mut t = RequestTiming::new(SimTime::ZERO);
                t.record_token(secs(0.2));
                t.record_token(secs(0.3));
                (t, 10)
            })
            .collect();
        let report = GoodputReport::compute(&sla, &fast, SimDuration::from_secs(10));
        assert!(report.is_p99_compliant(&sla));
        assert_eq!(
            report.p99_goodput_tok_per_s(&sla),
            report.throughput_tok_per_s
        );
        // Two slow requests out of 100 push the P99 over the limit: the
        // whole system scores zero under this interpretation.
        let mut mixed = fast;
        for _ in 0..2 {
            let mut t = RequestTiming::new(SimTime::ZERO);
            t.record_token(secs(30.0));
            mixed.push((t, 10));
        }
        let report = GoodputReport::compute(&sla, &mixed, SimDuration::from_secs(10));
        assert!(!report.is_p99_compliant(&sla));
        assert_eq!(report.p99_goodput_tok_per_s(&sla), 0.0);
        // One in ~100 stays under the P99 bar.
        let report_one = GoodputReport::compute(
            &sla,
            &{
                let mut v: Vec<(RequestTiming, u64)> = (0..198)
                    .map(|_| {
                        let mut t = RequestTiming::new(SimTime::ZERO);
                        t.record_token(secs(0.2));
                        (t, 10)
                    })
                    .collect();
                let mut t = RequestTiming::new(SimTime::ZERO);
                t.record_token(secs(30.0));
                v.push((t, 10));
                v
            },
            SimDuration::from_secs(10),
        );
        assert!(report_one.is_p99_compliant(&sla));
    }

    #[test]
    fn empty_report_is_compliant() {
        let report = GoodputReport::compute(&SlaSpec::chat_7b(), &[], SimDuration::ZERO);
        assert!(report.is_p99_compliant(&SlaSpec::chat_7b()));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn goodput_never_exceeds_throughput(
                tokens in proptest::collection::vec((1u64..1000, 0u64..20_000_000), 0..50),
            ) {
                let sla = SlaSpec::chat_7b();
                let requests: Vec<(RequestTiming, u64)> = tokens
                    .iter()
                    .map(|&(n, first_us)| {
                        let mut t = RequestTiming::new(SimTime::ZERO);
                        t.record_token(SimTime::from_micros(first_us));
                        (t, n)
                    })
                    .collect();
                let r = GoodputReport::compute(&sla, &requests, SimDuration::from_secs(60));
                prop_assert!(r.goodput_tok_per_s <= r.throughput_tok_per_s + 1e-9);
                prop_assert!(r.satisfied_requests <= r.total_requests);
            }

            #[test]
            fn mtpot_is_max_of_gaps(gaps in proptest::collection::vec(1u64..5_000_000, 1..100)) {
                let mut t = RequestTiming::new(SimTime::ZERO);
                let mut now = 0u64;
                t.record_token(SimTime::from_micros(now));
                let mut max_gap = 0u64;
                for g in &gaps {
                    now += g;
                    max_gap = max_gap.max(*g);
                    t.record_token(SimTime::from_micros(now));
                }
                prop_assert_eq!(t.mtpot(), SimDuration::from_micros(max_gap));
                prop_assert_eq!(t.n_tokens(), gaps.len() as u64 + 1);
            }
        }
    }
}
