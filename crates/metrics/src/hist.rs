//! Output-length histograms.
//!
//! The Past-Future scheduler compares the *distribution* of request output
//! lengths across time windows (paper Section 3.2, Figures 3 and 4). A
//! [`LengthHistogram`] bins token counts with either linear or logarithmic
//! bins and exposes the normalized probability vector used for cosine
//! similarity.

use std::fmt;

/// Error from [`Binning::linear`]: a zero bin width cannot bin anything.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroBinWidth;

impl fmt::Display for ZeroBinWidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "linear bin width must be non-zero")
    }
}

impl std::error::Error for ZeroBinWidth {}

/// Binning strategy for [`LengthHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Binning {
    /// Fixed-width bins: lengths `[k*width, (k+1)*width)` share bin `k`.
    Linear {
        /// Width of each bin in tokens; must be non-zero (enforced by
        /// [`Binning::linear`]; a hand-built zero width panics in
        /// [`Binning::bin_of`]).
        width: u32,
    },
    /// Power-of-two bins: bin `k` holds lengths in `[2^k, 2^(k+1))`
    /// (length 0 maps to bin 0 together with length 1).
    Log2,
}

impl Binning {
    /// Validated linear binning: rejects a zero width instead of
    /// deferring the failure to the first [`Binning::bin_of`] call.
    ///
    /// # Errors
    ///
    /// Returns [`ZeroBinWidth`] when `width == 0`.
    pub fn linear(width: u32) -> Result<Binning, ZeroBinWidth> {
        if width == 0 {
            Err(ZeroBinWidth)
        } else {
            Ok(Binning::Linear { width })
        }
    }

    /// Bin index for a length.
    ///
    /// # Panics
    ///
    /// Panics if the binning is `Linear` with a zero width (impossible
    /// via [`Binning::linear`]). Earlier versions silently clamped the
    /// width to 1, which mislabelled every length as its own bin.
    pub fn bin_of(self, len: u32) -> usize {
        match self {
            Binning::Linear { width } => {
                assert!(width > 0, "{ZeroBinWidth} (use Binning::linear)");
                (len / width) as usize
            }
            Binning::Log2 => {
                if len <= 1 {
                    0
                } else {
                    (32 - (len - 1).leading_zeros()) as usize
                }
            }
        }
    }
}

impl Default for Binning {
    fn default() -> Self {
        Binning::Linear { width: 64 }
    }
}

/// Histogram over token lengths.
///
/// # Example
///
/// ```
/// use pf_metrics::{Binning, LengthHistogram};
///
/// let h = LengthHistogram::from_lengths(Binning::Linear { width: 10 }, [5, 7, 25]);
/// assert_eq!(h.total(), 3);
/// assert_eq!(h.count_in_bin(0), 2); // lengths 5 and 7
/// assert_eq!(h.count_in_bin(2), 1); // length 25
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LengthHistogram {
    binning: Binning,
    counts: Vec<u64>,
    total: u64,
}

impl LengthHistogram {
    /// Creates an empty histogram with the given binning.
    pub fn new(binning: Binning) -> Self {
        LengthHistogram {
            binning,
            counts: Vec::new(),
            total: 0,
        }
    }

    /// Builds a histogram from an iterator of lengths.
    pub fn from_lengths<I: IntoIterator<Item = u32>>(binning: Binning, lengths: I) -> Self {
        let mut h = LengthHistogram::new(binning);
        for len in lengths {
            h.record(len);
        }
        h
    }

    /// Records one observation.
    pub fn record(&mut self, len: u32) {
        let bin = self.binning.bin_of(len);
        if bin >= self.counts.len() {
            self.counts.resize(bin + 1, 0);
        }
        self.counts[bin] += 1;
        self.total += 1;
    }

    /// The binning strategy.
    pub fn binning(&self) -> Binning {
        self.binning
    }

    /// Total number of recorded observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of allocated bins (highest occupied bin + 1).
    pub fn n_bins(&self) -> usize {
        self.counts.len()
    }

    /// Raw count in bin `bin` (0 for bins beyond the allocated range).
    pub fn count_in_bin(&self, bin: usize) -> u64 {
        self.counts.get(bin).copied().unwrap_or(0)
    }

    /// Raw counts as a slice.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Normalized probability vector (sums to 1; empty histogram yields an
    /// empty vector).
    pub fn probabilities(&self) -> Vec<f64> {
        if self.total == 0 {
            return Vec::new();
        }
        self.counts
            .iter()
            .map(|&c| c as f64 / self.total as f64)
            .collect()
    }

    /// Merges another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the binning strategies differ.
    pub fn merge(&mut self, other: &LengthHistogram) {
        assert_eq!(
            self.binning, other.binning,
            "cannot merge histograms with different binnings"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (dst, src) in self.counts.iter_mut().zip(&other.counts) {
            *dst += src;
        }
        self.total += other.total;
    }
}

impl fmt::Display for LengthHistogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "hist(total={}, bins={})", self.total, self.counts.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_binning() {
        let b = Binning::Linear { width: 100 };
        assert_eq!(b.bin_of(0), 0);
        assert_eq!(b.bin_of(99), 0);
        assert_eq!(b.bin_of(100), 1);
        assert_eq!(b.bin_of(1000), 10);
    }

    #[test]
    fn log2_binning() {
        let b = Binning::Log2;
        assert_eq!(b.bin_of(0), 0);
        assert_eq!(b.bin_of(1), 0);
        assert_eq!(b.bin_of(2), 1);
        assert_eq!(b.bin_of(3), 2);
        assert_eq!(b.bin_of(4), 2);
        assert_eq!(b.bin_of(5), 3);
        assert_eq!(b.bin_of(8), 3);
        assert_eq!(b.bin_of(9), 4);
    }

    #[test]
    fn linear_constructor_rejects_zero_width() {
        assert_eq!(Binning::linear(0), Err(ZeroBinWidth));
        assert_eq!(Binning::linear(64), Ok(Binning::Linear { width: 64 }));
        assert!(!ZeroBinWidth.to_string().is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn hand_built_zero_width_panics_loudly() {
        // Regression: a zero width used to be silently clamped to 1,
        // mislabelling every length as its own bin. Now it fails fast.
        Binning::Linear { width: 0 }.bin_of(7);
    }

    #[test]
    fn record_and_probabilities() {
        let mut h = LengthHistogram::new(Binning::Linear { width: 10 });
        h.record(1);
        h.record(2);
        h.record(15);
        assert_eq!(h.total(), 3);
        assert_eq!(h.counts(), &[2, 1]);
        let p = h.probabilities();
        assert!((p[0] - 2.0 / 3.0).abs() < 1e-12);
        assert!((p[1] - 1.0 / 3.0).abs() < 1e-12);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_probabilities() {
        let h = LengthHistogram::new(Binning::Log2);
        assert!(h.probabilities().is_empty());
        assert_eq!(h.count_in_bin(42), 0);
    }

    #[test]
    fn merge_accumulates() {
        let a = LengthHistogram::from_lengths(Binning::Linear { width: 10 }, [1, 2, 3]);
        let b = LengthHistogram::from_lengths(Binning::Linear { width: 10 }, [25, 35]);
        let mut m = a.clone();
        m.merge(&b);
        assert_eq!(m.total(), 5);
        assert_eq!(m.count_in_bin(0), 3);
        assert_eq!(m.count_in_bin(2), 1);
        assert_eq!(m.count_in_bin(3), 1);
    }

    #[test]
    #[should_panic(expected = "different binnings")]
    fn merge_mismatched_binning_panics() {
        let a = LengthHistogram::new(Binning::Log2);
        let mut b = LengthHistogram::new(Binning::Linear { width: 10 });
        b.merge(&a);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn total_matches_input(lengths in proptest::collection::vec(0u32..100_000, 0..500)) {
                let h = LengthHistogram::from_lengths(Binning::Log2, lengths.iter().copied());
                prop_assert_eq!(h.total(), lengths.len() as u64);
                prop_assert_eq!(h.counts().iter().sum::<u64>(), lengths.len() as u64);
            }

            #[test]
            fn probabilities_sum_to_one(lengths in proptest::collection::vec(0u32..100_000, 1..500)) {
                let h = LengthHistogram::from_lengths(Binning::Linear { width: 37 }, lengths);
                let sum: f64 = h.probabilities().iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-9);
            }

            #[test]
            fn log2_bins_are_ordered(a in 0u32..1_000_000, b in 0u32..1_000_000) {
                let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
                prop_assert!(Binning::Log2.bin_of(lo) <= Binning::Log2.bin_of(hi));
            }

            #[test]
            fn merge_equals_concat(
                xs in proptest::collection::vec(0u32..50_000, 0..200),
                ys in proptest::collection::vec(0u32..50_000, 0..200),
            ) {
                let binning = Binning::Linear { width: 64 };
                let mut merged = LengthHistogram::from_lengths(binning, xs.iter().copied());
                merged.merge(&LengthHistogram::from_lengths(binning, ys.iter().copied()));
                let concat = LengthHistogram::from_lengths(
                    binning,
                    xs.iter().chain(ys.iter()).copied(),
                );
                prop_assert_eq!(merged, concat);
            }
        }
    }
}
