//! Step-weighted time series.
//!
//! Memory-utilization statistics in the paper (Figure 1, Table 1) are
//! averages over *time*, not over samples: a long decode step at 95%
//! utilization must weigh more than a short one at 50%. [`StepSeries`]
//! records `(time, value)` observations where each value holds until the
//! next observation, and computes duration-weighted statistics.

use crate::time::{SimDuration, SimTime};

/// A piecewise-constant time series: each recorded value holds from its
/// timestamp until the next record.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct StepSeries {
    points: Vec<(SimTime, f64)>,
}

impl StepSeries {
    /// Creates an empty series.
    pub fn new() -> Self {
        StepSeries::default()
    }

    /// Records that the series takes value `value` from time `at` onward.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` precedes the last recorded time.
    pub fn record(&mut self, at: SimTime, value: f64) {
        if let Some(&(last, _)) = self.points.last() {
            debug_assert!(at >= last, "series time went backwards");
        }
        self.points.push((at, value));
    }

    /// Number of recorded points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The raw `(time, value)` points.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Duration-weighted mean over `[start, end)`.
    ///
    /// Points outside the range are clipped; the value in force at `start`
    /// is the last point at or before `start`. Returns `None` when the range
    /// is empty or no value is in force anywhere within it.
    pub fn time_weighted_mean(&self, start: SimTime, end: SimTime) -> Option<f64> {
        if end <= start || self.points.is_empty() {
            return None;
        }
        let mut weighted = 0.0;
        let mut total = SimDuration::ZERO;
        // Index of first point strictly after `start`.
        let first_after = self.points.partition_point(|&(t, _)| t <= start);
        // Value in force at `start`, if any.
        let mut current: Option<f64> = first_after.checked_sub(1).map(|i| self.points[i].1);
        let mut cursor = start;
        for &(t, v) in &self.points[first_after..] {
            if t >= end {
                break;
            }
            if let Some(cv) = current {
                let span = t - cursor;
                weighted += cv * span.as_secs_f64();
                total += span;
            }
            current = Some(v);
            cursor = t;
        }
        if let Some(cv) = current {
            let span = end - cursor;
            weighted += cv * span.as_secs_f64();
            total += span;
        }
        if total.is_zero() {
            None
        } else {
            Some(weighted / total.as_secs_f64())
        }
    }

    /// Duration-weighted mean over the full recorded range.
    pub fn overall_mean(&self) -> Option<f64> {
        let (&(start, _), &(end, _)) = (self.points.first()?, self.points.last()?);
        if start == end {
            // Single instant: fall back to the plain mean of point values.
            let sum: f64 = self.points.iter().map(|&(_, v)| v).sum();
            return Some(sum / self.points.len() as f64);
        }
        self.time_weighted_mean(start, end)
    }

    /// Maximum recorded value.
    pub fn max_value(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |m: f64| m.max(v))))
    }

    /// Downsamples to at most `n` evenly spaced points (for plotting/CSV).
    pub fn downsample(&self, n: usize) -> Vec<(SimTime, f64)> {
        if n == 0 || self.points.len() <= n {
            return self.points.clone();
        }
        let stride = self.points.len() as f64 / n as f64;
        (0..n)
            .map(|i| self.points[(i as f64 * stride) as usize])
            .collect()
    }
}

/// A small named collection of [`StepSeries`], for reports that track the
/// same quantity across several components (per-pool replica counts in a
/// disaggregated cluster, per-shard queue depths, …).
///
/// Names are created on first [`SeriesGroup::record`]; iteration order is
/// insertion order, so reports render deterministically.
#[derive(Debug, Clone, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SeriesGroup {
    entries: Vec<(String, StepSeries)>,
}

impl SeriesGroup {
    /// Creates an empty group.
    pub fn new() -> Self {
        SeriesGroup::default()
    }

    /// Records a value on the named series, creating the series on first
    /// use.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `at` precedes the named series' last
    /// recorded time (see [`StepSeries::record`]).
    pub fn record(&mut self, name: &str, at: SimTime, value: f64) {
        match self.entries.iter_mut().find(|(n, _)| n == name) {
            Some((_, series)) => series.record(at, value),
            None => {
                let mut series = StepSeries::new();
                series.record(at, value);
                self.entries.push((name.to_string(), series));
            }
        }
    }

    /// The named series, if any value was recorded under that name.
    pub fn get(&self, name: &str) -> Option<&StepSeries> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Number of named series in the group.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no series has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates `(name, series)` pairs in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &StepSeries)> {
        self.entries.iter().map(|(n, s)| (n.as_str(), s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: u64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn weighted_mean_basic() {
        let mut s = StepSeries::new();
        s.record(t(0), 1.0); // holds [0, 10)
        s.record(t(10), 3.0); // holds [10, 20)
        let m = s.time_weighted_mean(t(0), t(20)).unwrap();
        assert!((m - 2.0).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_unequal_spans() {
        let mut s = StepSeries::new();
        s.record(t(0), 0.0); // [0, 30): 0
        s.record(t(30), 1.0); // [30, 40): 1
        let m = s.time_weighted_mean(t(0), t(40)).unwrap();
        assert!((m - 0.25).abs() < 1e-12);
    }

    #[test]
    fn weighted_mean_clips_range() {
        let mut s = StepSeries::new();
        s.record(t(0), 10.0);
        s.record(t(10), 20.0);
        // Only look at [5, 15): 5s of 10.0 and 5s of 20.0.
        let m = s.time_weighted_mean(t(5), t(15)).unwrap();
        assert!((m - 15.0).abs() < 1e-12);
    }

    #[test]
    fn mean_before_first_point_is_none() {
        let mut s = StepSeries::new();
        s.record(t(10), 5.0);
        assert_eq!(s.time_weighted_mean(t(0), t(10)), None);
        // Range covering the point works.
        assert_eq!(s.time_weighted_mean(t(10), t(20)), Some(5.0));
    }

    #[test]
    fn overall_mean_and_max() {
        let mut s = StepSeries::new();
        s.record(t(0), 1.0);
        s.record(t(1), 5.0);
        s.record(t(3), 2.0);
        assert_eq!(s.max_value(), Some(5.0));
        // [0,1): 1.0; [1,3): 5.0; the final value never accrues time.
        let m = s.overall_mean().unwrap();
        assert!((m - (1.0 + 5.0 * 2.0) / 3.0).abs() < 1e-12);
    }

    #[test]
    fn single_instant_mean() {
        let mut s = StepSeries::new();
        s.record(t(5), 2.0);
        s.record(t(5), 4.0);
        assert_eq!(s.overall_mean(), Some(3.0));
    }

    #[test]
    fn empty_series() {
        let s = StepSeries::new();
        assert!(s.is_empty());
        assert_eq!(s.overall_mean(), None);
        assert_eq!(s.max_value(), None);
        assert!(s.downsample(10).is_empty());
    }

    #[test]
    fn series_group_tracks_named_series_independently() {
        let mut g = SeriesGroup::new();
        assert!(g.is_empty());
        g.record("prefill-live", t(0), 2.0);
        g.record("decode-live", t(0), 1.0);
        g.record("prefill-live", t(10), 3.0);
        assert_eq!(g.len(), 2);
        assert_eq!(g.get("prefill-live").unwrap().len(), 2);
        assert_eq!(g.get("decode-live").unwrap().max_value(), Some(1.0));
        assert!(g.get("missing").is_none());
        // Insertion order is preserved for deterministic rendering.
        let names: Vec<&str> = g.iter().map(|(n, _)| n).collect();
        assert_eq!(names, vec!["prefill-live", "decode-live"]);
    }

    #[test]
    fn downsample_limits_points() {
        let mut s = StepSeries::new();
        for i in 0..100 {
            s.record(t(i), i as f64);
        }
        let d = s.downsample(10);
        assert_eq!(d.len(), 10);
        assert_eq!(d[0].1, 0.0);
        let full = s.downsample(1000);
        assert_eq!(full.len(), 100);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn mean_within_value_bounds(
                values in proptest::collection::vec(0.0f64..100.0, 2..50),
            ) {
                let mut s = StepSeries::new();
                for (i, &v) in values.iter().enumerate() {
                    s.record(SimTime::from_secs(i as u64), v);
                }
                let m = s.overall_mean().unwrap();
                let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
                let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                prop_assert!(m >= min - 1e-9 && m <= max + 1e-9);
            }
        }
    }
}
