//! Simulated time.
//!
//! The whole workspace measures time in integer microseconds to keep the
//! discrete-event simulation exactly reproducible (no floating point drift in
//! the event loop). [`SimTime`] is a point on the simulated clock and
//! [`SimDuration`] is a span between two points.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimTime(u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of simulated time.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time point from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time point from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates a time point from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Creates a time point from fractional seconds (rounded to microseconds).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime((secs * 1e6).round() as u64)
    }

    /// Raw microsecond value.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// Creates a duration from fractional seconds (rounded to microseconds).
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * 1e6).round() as u64)
    }

    /// Raw microsecond value.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`SimTime::saturating_since`] when ordering is not guaranteed.
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(self.0 >= rhs.0, "time went backwards: {self:?} - {rhs:?}");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> SimDuration {
        SimDuration(iter.map(|d| d.0).sum())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 < 1_000 {
            write!(f, "{}us", self.0)
        } else if self.0 < 1_000_000 {
            write!(f, "{:.2}ms", self.as_millis_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
        assert_eq!(SimTime::from_secs_f64(1.5).as_micros(), 1_500_000);
        assert_eq!(SimDuration::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimDuration::from_secs_f64(0.25).as_micros(), 250_000);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_micros(), 1_500_000);
        let d = t - SimTime::from_secs(1);
        assert_eq!(d, SimDuration::from_millis(500));
        assert_eq!(d * 4, SimDuration::from_secs(2));
        assert_eq!(SimDuration::from_secs(2) / 4, SimDuration::from_millis(500));
    }

    #[test]
    fn saturating_since_clamps() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
    }

    #[test]
    fn display_uses_readable_units() {
        assert_eq!(SimDuration::from_micros(12).to_string(), "12us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
        assert_eq!(SimTime::from_secs(1).to_string(), "1.000s");
    }

    #[test]
    fn duration_sum() {
        let total: SimDuration = [1u64, 2, 3].into_iter().map(SimDuration::from_secs).sum();
        assert_eq!(total, SimDuration::from_secs(6));
    }

    #[test]
    #[should_panic(expected = "invalid time")]
    fn negative_seconds_panic() {
        let _ = SimTime::from_secs_f64(-1.0);
    }
}
