//! A lexed source file plus the derived structure rules need: line
//! lookup, the significant-token stream, `#[cfg(test)]` module masking,
//! and inline `// pf-lint: allow(...)` suppressions.

use crate::lexer::{lex, Token, TokenKind};

/// One inline suppression comment.
///
/// Syntax: `// pf-lint: allow(D1): justification text`, or
/// `// pf-lint: allow(D1, D2): …` for several rules at once. A suppression
/// on a line of its own applies to the next line; a trailing suppression
/// applies to its own line. The justification (after the second colon) is
/// mandatory — an empty one turns the suppression into an `S1` finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Suppression {
    /// Rule ids this comment suppresses (e.g. `["D1"]`).
    pub rules: Vec<String>,
    /// 1-based line the comment sits on.
    pub comment_line: u32,
    /// 1-based line the suppression applies to.
    pub applies_line: u32,
    /// Whether a non-empty justification was given.
    pub justified: bool,
}

/// A source file, lexed, with the derived views rules operate on.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path, `/`-separated.
    pub rel_path: String,
    /// Full file contents.
    pub text: String,
    /// Complete token stream (spans partition `text`).
    pub tokens: Vec<Token>,
    /// Indices into `tokens` of significant tokens (no whitespace, no
    /// comments) — the stream adjacency rules match against.
    pub sig: Vec<usize>,
    /// Byte offset of the start of each line (index 0 = line 1).
    line_starts: Vec<usize>,
    /// Byte ranges covered by `#[cfg(test)] mod … { … }` bodies.
    test_mask: Vec<(usize, usize)>,
    /// Parsed inline suppressions.
    suppressions: Vec<Suppression>,
}

impl SourceFile {
    /// Lexes `text` and computes all derived views.
    pub fn new(rel_path: impl Into<String>, text: impl Into<String>) -> Self {
        let text = text.into();
        let tokens = lex(&text);
        let sig: Vec<usize> = tokens
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                !matches!(
                    t.kind,
                    TokenKind::Whitespace | TokenKind::LineComment | TokenKind::BlockComment
                )
            })
            .map(|(i, _)| i)
            .collect();
        let mut line_starts = vec![0usize];
        for (i, b) in text.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i + 1);
            }
        }
        let mut file = SourceFile {
            rel_path: rel_path.into(),
            text,
            tokens,
            sig,
            line_starts,
            test_mask: Vec::new(),
            suppressions: Vec::new(),
        };
        file.test_mask = file.compute_test_mask();
        file.suppressions = file.compute_suppressions();
        file
    }

    /// The source text of a token.
    pub fn slice(&self, t: &Token) -> &str {
        &self.text[t.start..t.end]
    }

    /// The trimmed text of a 1-based line (empty for out-of-range lines).
    pub fn line_text(&self, line: u32) -> &str {
        let idx = line as usize - 1;
        let Some(&start) = self.line_starts.get(idx) else {
            return "";
        };
        let end = self
            .line_starts
            .get(idx + 1)
            .map_or(self.text.len(), |&next| next);
        self.text[start..end].trim_end_matches(['\n', '\r']).trim()
    }

    /// Whether a byte offset falls inside a `#[cfg(test)] mod` body.
    pub fn in_test_mask(&self, offset: usize) -> bool {
        self.test_mask
            .iter()
            .any(|&(start, end)| offset >= start && offset < end)
    }

    /// Parsed suppressions, in file order.
    pub fn suppressions(&self) -> &[Suppression] {
        &self.suppressions
    }

    /// Whether `rule` is suppressed on `line` (regardless of
    /// justification — unjustified suppressions still suppress, but emit
    /// an `S1` finding so the tree cannot be clean without the reason).
    pub fn suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions
            .iter()
            .any(|s| s.applies_line == line && s.rules.iter().any(|r| r == rule))
    }

    /// The significant token at sig-index `i`, if in range.
    pub fn sig_token(&self, i: usize) -> Option<&Token> {
        self.sig.get(i).map(|&idx| &self.tokens[idx])
    }

    /// The source text of the significant token at sig-index `i`.
    pub fn sig_text(&self, i: usize) -> Option<&str> {
        self.sig_token(i).map(|t| self.slice(t))
    }

    /// Byte ranges of `#[cfg(test)] mod name { … }` bodies, so rules can
    /// exempt test-only code without a parser. The scan is token-based:
    /// attributes and module braces are matched over significant tokens,
    /// so strings and comments cannot confuse the depth counting.
    fn compute_test_mask(&self) -> Vec<(usize, usize)> {
        let mut mask = Vec::new();
        let n = self.sig.len();
        let mut i = 0;
        while i < n {
            // Match `# [ cfg ( test ) ]`.
            let is_cfg_test = self.sig_text(i) == Some("#")
                && self.sig_text(i + 1) == Some("[")
                && self.sig_text(i + 2) == Some("cfg")
                && self.sig_text(i + 3) == Some("(")
                && self.sig_text(i + 4) == Some("test")
                && self.sig_text(i + 5) == Some(")")
                && self.sig_text(i + 6) == Some("]");
            if !is_cfg_test {
                i += 1;
                continue;
            }
            let attr_start = self.sig_token(i).expect("matched above").start;
            let mut j = i + 7;
            // Skip any further attributes between the cfg and the item.
            while self.sig_text(j) == Some("#") && self.sig_text(j + 1) == Some("[") {
                let mut depth = 0usize;
                j += 1;
                while let Some(text) = self.sig_text(j) {
                    match text {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
            }
            if self.sig_text(j) != Some("mod") {
                i += 1;
                continue;
            }
            // `mod name { … }` — find the body's matching close brace.
            j += 2; // skip `mod` and the name
            if self.sig_text(j) != Some("{") {
                i += 1; // `mod name;` — out-of-line test module, no body here
                continue;
            }
            let mut depth = 0usize;
            let mut end = None;
            while let Some(text) = self.sig_text(j) {
                match text {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            end = Some(self.sig_token(j).expect("in range").end);
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
            match end {
                Some(end) => {
                    mask.push((attr_start, end));
                    i = j + 1;
                }
                None => break, // unbalanced braces: stop masking, not lint
            }
        }
        mask
    }

    /// Parses `// pf-lint: allow(<rules>)[: justification]` comments.
    fn compute_suppressions(&self) -> Vec<Suppression> {
        let mut out = Vec::new();
        for t in &self.tokens {
            if t.kind != TokenKind::LineComment {
                continue;
            }
            let body = self.slice(t).trim_start_matches('/').trim();
            let Some(rest) = body.strip_prefix("pf-lint:") else {
                continue;
            };
            let rest = rest.trim();
            let Some(rest) = rest.strip_prefix("allow(") else {
                continue;
            };
            let Some(close) = rest.find(')') else {
                continue;
            };
            let rules: Vec<String> = rest[..close]
                .split(',')
                .map(|r| r.trim().to_string())
                .filter(|r| !r.is_empty())
                .collect();
            let tail = rest[close + 1..].trim();
            let justified = tail
                .strip_prefix(':')
                .map(str::trim)
                .is_some_and(|j| !j.is_empty());
            // Trailing comment suppresses its own line; a comment alone on
            // its line suppresses the next line.
            let has_code_before = self
                .tokens
                .iter()
                .take_while(|o| o.start < t.start)
                .any(|o| {
                    o.line == t.line
                        && !matches!(
                            o.kind,
                            TokenKind::Whitespace
                                | TokenKind::LineComment
                                | TokenKind::BlockComment
                        )
                });
            let applies_line = if has_code_before { t.line } else { t.line + 1 };
            out.push(Suppression {
                rules,
                comment_line: t.line,
                applies_line,
                justified,
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_text_trims_and_handles_crlf() {
        let f = SourceFile::new("x.rs", "first\r\n  second  \nthird");
        assert_eq!(f.line_text(1), "first");
        assert_eq!(f.line_text(2), "second");
        assert_eq!(f.line_text(3), "third");
        assert_eq!(f.line_text(4), "");
    }

    #[test]
    fn cfg_test_mod_is_masked() {
        let src = "\
fn live() {}\n\
#[cfg(test)]\n\
mod tests {\n\
    use std::collections::HashMap;\n\
    fn helper() { let _m: HashMap<u32, u32> = HashMap::new(); }\n\
}\n\
fn also_live() {}\n";
        let f = SourceFile::new("x.rs", src);
        let in_tests = src.find("HashMap").unwrap();
        let live = src.find("live").unwrap();
        let after = src.find("also_live").unwrap();
        assert!(f.in_test_mask(in_tests));
        assert!(!f.in_test_mask(live));
        assert!(!f.in_test_mask(after));
    }

    #[test]
    fn cfg_test_with_extra_attribute_and_tricky_strings() {
        let src = "\
#[cfg(test)]\n\
#[allow(dead_code)]\n\
mod tests {\n\
    const S: &str = \"}\"; // a brace in a string must not end the mask\n\
    fn f() { thread_rng(); }\n\
}\n\
fn live() {}\n";
        let f = SourceFile::new("x.rs", src);
        assert!(f.in_test_mask(src.find("thread_rng").unwrap()));
        assert!(!f.in_test_mask(src.find("live").unwrap()));
    }

    #[test]
    fn cfg_test_on_fn_is_not_masked() {
        let src = "#[cfg(test)]\nfn helper() { thread_rng(); }\n";
        let f = SourceFile::new("x.rs", src);
        assert!(!f.in_test_mask(src.find("thread_rng").unwrap()));
    }

    #[test]
    fn suppression_parsing_same_line_and_next_line() {
        let src = "\
let a = 1; // pf-lint: allow(D1): lookups only, order never observed\n\
// pf-lint: allow(D2, D3): shim timing code\n\
let b = 2;\n\
let c = 3; // pf-lint: allow(D4)\n";
        let f = SourceFile::new("x.rs", src);
        let s = f.suppressions();
        assert_eq!(s.len(), 3);
        assert_eq!(s[0].rules, vec!["D1"]);
        assert_eq!(s[0].applies_line, 1);
        assert!(s[0].justified);
        assert_eq!(s[1].rules, vec!["D2", "D3"]);
        assert_eq!(
            s[1].applies_line, 3,
            "standalone comment covers the next line"
        );
        assert!(s[1].justified);
        assert_eq!(s[2].rules, vec!["D4"]);
        assert_eq!(s[2].applies_line, 4);
        assert!(!s[2].justified, "no justification given");
        assert!(f.suppressed("D1", 1));
        assert!(!f.suppressed("D1", 2));
        assert!(f.suppressed("D3", 3));
        assert!(f.suppressed("D4", 4));
    }
}
