//! `pf-lint`: the workspace determinism linter.
//!
//! Offline and dependency-free by design — it must run in the
//! registry-less container before anything else builds. The pipeline:
//!
//! 1. [`lexer`] — a hand-rolled, total Rust lexer (any input lexes;
//!    spans partition the input) so rules see comments and strings as
//!    distinct tokens instead of grepping raw text.
//! 2. [`source`] — per-file derived structure: significant-token stream,
//!    `#[cfg(test)]` module masking, inline suppressions.
//! 3. [`rules`] — the determinism catalog (D1–D4, X1, S1) plus
//!    suppression filtering.
//! 4. [`baseline`] — grandfathered findings with mandatory
//!    justifications (B1).
//! 5. [`selftest`] — embedded known-bad fixtures proving every rule
//!    still fires.
//!
//! See `docs/static-analysis.md` for the workflow.

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod selftest;
pub mod source;
pub mod workspace;
