//! Workspace discovery and the deterministic file walk.

use std::fs;
use std::path::{Path, PathBuf};

/// Ascends from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = start.to_path_buf();
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Collects every `.rs` file under `root`, returning `/`-separated
/// workspace-relative paths in **sorted order** — the linter's own output
/// must be deterministic. Skips `target/`, VCS metadata, and hidden
/// directories.
pub fn collect_rs_files(root: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            let ty = entry.file_type()?;
            if ty.is_dir() {
                if name == "target" || name.starts_with('.') {
                    continue;
                }
                stack.push(path);
            } else if ty.is_file() && name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    Ok(files)
}

/// `/`-separated path of `path` relative to `root` (falls back to the
/// full path if `path` is not under `root`).
pub fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}
