//! A small hand-rolled Rust lexer.
//!
//! The container this workspace builds in has no crate-registry access, so
//! `syn`/`proc-macro2` are unavailable; the linter instead tokenizes source
//! text itself. The lexer is *total*: any byte sequence lexes into a token
//! stream whose spans exactly partition the input (malformed constructs —
//! unterminated strings or comments — are tolerated by consuming to end of
//! input). Rules only need token *identity* plus spans and line numbers, so
//! the lexer is deliberately simpler than a compiler front end:
//!
//! * line (`//`) and block (`/* */`) comments, with proper nesting;
//! * string, byte-string, raw-string (`r"…"`, `r#"…"#`, any hash count,
//!   `br…` variants), char and byte-char literals, with escapes;
//! * raw identifiers (`r#type`);
//! * lifetime-vs-char disambiguation (`'a` vs `'a'`);
//! * numbers (including `_` separators, float exponents and suffixes);
//! * multi-character operators matched longest-first.
//!
//! Comments and strings are distinct tokens, so rules that scan identifier
//! tokens can never false-positive on a `HashMap` mentioned in a doc
//! comment or a string literal — the property that makes token-level
//! linting strictly better than `grep`.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// A run of whitespace (spaces, tabs, newlines).
    Whitespace,
    /// A `//` comment, up to (not including) the terminating newline.
    LineComment,
    /// A `/* … */` comment, nesting tracked.
    BlockComment,
    /// An identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// A lifetime or loop label (`'a`, `'static`).
    Lifetime,
    /// A char or byte-char literal (`'x'`, `b'\n'`).
    Char,
    /// A string or byte-string literal (`"…"`, `b"…"`).
    Str,
    /// A raw string literal (`r"…"`, `r#"…"#`, `br#"…"#`).
    RawStr,
    /// A numeric literal (`42`, `0xFF`, `1.5e-3`, `42_000u64`).
    Number,
    /// An operator or delimiter, multi-character ops as one token.
    Punct,
    /// A character the lexer has no rule for (stray non-ASCII, `\0`, …).
    Unknown,
}

/// One token: classification plus byte span and 1-based start line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte (inclusive).
    pub start: usize,
    /// Byte offset one past the last byte (exclusive).
    pub end: usize,
    /// 1-based line number of `start`.
    pub line: u32,
}

struct Lexer<'a> {
    src: &'a str,
    pos: usize,
    line: u32,
}

/// Multi-character operators, longest first so the match is maximal.
const MULTI_PUNCT: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

impl<'a> Lexer<'a> {
    fn peek_at(&self, n: usize) -> Option<char> {
        self.src[self.pos..].chars().nth(n)
    }

    fn peek(&self) -> Option<char> {
        self.peek_at(0)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn bump_while(&mut self, pred: impl Fn(char) -> bool) {
        while self.peek().is_some_and(&pred) {
            self.bump();
        }
    }

    fn starts_with(&self, s: &str) -> bool {
        self.src[self.pos..].starts_with(s)
    }

    /// Consumes a `//` comment up to (not including) the newline.
    fn line_comment(&mut self) -> TokenKind {
        self.bump_while(|c| c != '\n');
        TokenKind::LineComment
    }

    /// Consumes a `/* … */` comment with nesting; unterminated comments
    /// run to end of input.
    fn block_comment(&mut self) -> TokenKind {
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1u32;
        while depth > 0 {
            if self.starts_with("/*") {
                self.bump();
                self.bump();
                depth += 1;
            } else if self.starts_with("*/") {
                self.bump();
                self.bump();
                depth -= 1;
            } else if self.bump().is_none() {
                break;
            }
        }
        TokenKind::BlockComment
    }

    /// Consumes a `"…"`-style literal (opening quote already peeked);
    /// handles `\"` and `\\`; unterminated strings run to end of input.
    fn quoted(&mut self, quote: char) -> TokenKind {
        self.bump(); // opening quote
        loop {
            match self.bump() {
                None => break,
                Some('\\') => {
                    self.bump(); // the escaped char (possibly the quote)
                }
                Some(c) if c == quote => break,
                Some(_) => {}
            }
        }
        if quote == '"' {
            TokenKind::Str
        } else {
            TokenKind::Char
        }
    }

    /// Consumes a raw string starting at the current `r` (prefix bytes up
    /// to and including `r` NOT yet consumed; `extra` counts already-known
    /// prefix chars to skip, e.g. 1 for the `b` of `br"…"`).
    ///
    /// Returns `None` (consuming nothing) if what follows is not actually
    /// a raw string opener.
    fn try_raw_string(&mut self, extra: usize) -> Option<TokenKind> {
        // Count hashes after the `r`.
        let mut n = 0usize;
        while self.peek_at(extra + 1 + n) == Some('#') {
            n += 1;
        }
        if self.peek_at(extra + 1 + n) != Some('"') {
            return None;
        }
        for _ in 0..extra + 1 + n {
            self.bump(); // prefix, `r`, hashes
        }
        self.bump(); // opening quote
                     // Scan for `"` followed by n hashes.
        'scan: loop {
            match self.bump() {
                None => break 'scan,
                Some('"') => {
                    let mut ok = true;
                    for k in 0..n {
                        if self.peek_at(k) != Some('#') {
                            ok = false;
                            break;
                        }
                    }
                    if ok {
                        for _ in 0..n {
                            self.bump();
                        }
                        break 'scan;
                    }
                }
                Some(_) => {}
            }
        }
        Some(TokenKind::RawStr)
    }

    /// Consumes a numeric literal. Permissive: digits/alphanumerics with
    /// `_` separators, one fractional part, and a signed exponent.
    fn number(&mut self) -> TokenKind {
        self.bump_while(|c| c.is_ascii_alphanumeric() || c == '_');
        // Fractional part: only when a digit follows the dot, so `0..10`
        // and `1.max(2)` keep their dot as punctuation.
        if self.peek() == Some('.') && self.peek_at(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            self.bump_while(|c| c.is_ascii_alphanumeric() || c == '_');
        }
        // Signed exponent: `1.5e-3` / `2E+8` (unsigned exponents were
        // already consumed as alphanumerics).
        if self.src[..self.pos].ends_with(['e', 'E'])
            && matches!(self.peek(), Some('+') | Some('-'))
            && self.peek_at(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.bump();
            self.bump_while(|c| c.is_ascii_alphanumeric() || c == '_');
        }
        TokenKind::Number
    }

    /// Lifetime, loop label, or char literal, starting at `'`.
    fn tick(&mut self) -> TokenKind {
        let c1 = self.peek_at(1);
        let c2 = self.peek_at(2);
        match (c1, c2) {
            (Some('\\'), _) => self.quoted('\''),
            // `'x'` for any single char — including ones that could start
            // an identifier (`'a'`).
            (Some(_), Some('\'')) => {
                self.bump();
                self.bump();
                self.bump();
                TokenKind::Char
            }
            // `'ident` with no closing quote: lifetime or loop label.
            (Some(c), _) if is_ident_start(c) => {
                self.bump(); // '
                self.bump_while(is_ident_continue);
                TokenKind::Lifetime
            }
            // `'<non-ident>` without a closing quote (or trailing `'` at
            // EOF): consume until the quote closes or input ends.
            (Some(_), _) => self.quoted('\''),
            (None, _) => {
                self.bump();
                TokenKind::Unknown
            }
        }
    }

    fn next_kind(&mut self) -> TokenKind {
        let c = self.peek().expect("next_kind called at end of input");
        if c.is_whitespace() {
            self.bump_while(char::is_whitespace);
            return TokenKind::Whitespace;
        }
        if self.starts_with("//") {
            return self.line_comment();
        }
        if self.starts_with("/*") {
            return self.block_comment();
        }
        match c {
            '"' => return self.quoted('"'),
            '\'' => return self.tick(),
            'r' => {
                if let Some(kind) = self.try_raw_string(0) {
                    return kind;
                }
                // `r#ident` raw identifier.
                if self.peek_at(1) == Some('#') && self.peek_at(2).is_some_and(is_ident_start) {
                    self.bump(); // r
                    self.bump(); // #
                    self.bump_while(is_ident_continue);
                    return TokenKind::Ident;
                }
            }
            'b' => {
                match self.peek_at(1) {
                    Some('"') => {
                        self.bump(); // b
                        return self.quoted('"');
                    }
                    Some('\'') => {
                        self.bump(); // b
                        return self.quoted('\'');
                    }
                    Some('r') => {
                        if let Some(kind) = self.try_raw_string(1) {
                            return kind;
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
        if is_ident_start(c) {
            self.bump_while(is_ident_continue);
            return TokenKind::Ident;
        }
        if c.is_ascii_digit() {
            return self.number();
        }
        for op in MULTI_PUNCT {
            if self.starts_with(op) {
                for _ in 0..op.len() {
                    self.bump();
                }
                return TokenKind::Punct;
            }
        }
        self.bump();
        if c.is_ascii() && !c.is_ascii_control() {
            TokenKind::Punct
        } else {
            TokenKind::Unknown
        }
    }
}

/// Lexes `src` into a token stream whose spans exactly partition
/// `0..src.len()`.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        src,
        pos: 0,
        line: 1,
    };
    let mut out = Vec::new();
    while lx.pos < src.len() {
        let start = lx.pos;
        let line = lx.line;
        let kind = lx.next_kind();
        debug_assert!(lx.pos > start, "lexer must make progress");
        out.push(Token {
            kind,
            start,
            end: lx.pos,
            line,
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| t.kind)
            .collect()
    }

    fn texts(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| src[t.start..t.end].to_string())
            .collect()
    }

    #[test]
    fn spans_partition_simple_input() {
        let src = "fn main() { let x = 1; }";
        let tokens = lex(src);
        assert_eq!(tokens[0].start, 0);
        assert_eq!(tokens.last().unwrap().end, src.len());
        for pair in tokens.windows(2) {
            assert_eq!(pair[0].end, pair[1].start);
        }
    }

    #[test]
    fn nested_block_comments() {
        use TokenKind::*;
        assert_eq!(
            kinds("/* a /* b /* c */ */ */ x"),
            vec![BlockComment, Ident]
        );
        // Unterminated: swallows the rest, still one token.
        assert_eq!(kinds("/* a /* b */"), vec![BlockComment]);
        // The comment body never leaks tokens.
        assert_eq!(
            kinds("/* \"unclosed string */ y"),
            vec![BlockComment, Ident]
        );
    }

    #[test]
    fn raw_strings_with_hashes() {
        use TokenKind::*;
        assert_eq!(
            kinds(r####"r#"raw "quoted" body"# x"####),
            vec![RawStr, Ident]
        );
        assert_eq!(kinds("r\"plain\" x"), vec![RawStr, Ident]);
        // A `"#` inside an `r##` string does not terminate it.
        assert_eq!(kinds("r##\"inner \"# still\"## x"), vec![RawStr, Ident]);
        // Byte raw strings.
        assert_eq!(kinds("br#\"bytes\"# x"), vec![RawStr, Ident]);
        // Comment-looking content inside a raw string stays a string.
        assert_eq!(kinds("r#\"// not a comment\"# x"), vec![RawStr, Ident]);
    }

    #[test]
    fn raw_identifiers_and_plain_r() {
        use TokenKind::*;
        assert_eq!(kinds("r#type"), vec![Ident]);
        assert_eq!(texts("r#type x"), vec!["r#type", "x"]);
        assert_eq!(kinds("rng"), vec![Ident]);
        assert_eq!(kinds("r"), vec![Ident]);
    }

    #[test]
    fn lifetimes_vs_chars_vs_labels() {
        use TokenKind::*;
        assert_eq!(kinds("'a'"), vec![Char]);
        assert_eq!(kinds("'static"), vec![Lifetime]);
        assert_eq!(kinds("<'a>"), vec![Punct, Lifetime, Punct]);
        assert_eq!(kinds("'\\n'"), vec![Char]);
        assert_eq!(kinds("'\\''"), vec![Char]);
        assert_eq!(kinds("b'x'"), vec![Char]);
        assert_eq!(kinds("'outer: loop"), vec![Lifetime, Punct, Ident]);
    }

    #[test]
    fn strings_with_escapes() {
        use TokenKind::*;
        assert_eq!(kinds(r#""a \" b" x"#), vec![Str, Ident]);
        assert_eq!(kinds(r#""a \\" x"#), vec![Str, Ident]);
        assert_eq!(kinds("b\"bytes\" x"), vec![Str, Ident]);
        // Unterminated string swallows the rest.
        assert_eq!(kinds("\"open x"), vec![Str]);
    }

    #[test]
    fn numbers() {
        use TokenKind::*;
        assert_eq!(
            kinds("42 0xFF 1_000u64 1.5e-3 2E+8 1.0f64"),
            vec![Number; 6]
        );
        // Range and method-call dots stay punctuation.
        assert_eq!(kinds("0..10"), vec![Number, Punct, Number]);
        assert_eq!(
            kinds("1.max(2)"),
            vec![Number, Punct, Ident, Punct, Number, Punct]
        );
    }

    #[test]
    fn multi_char_punct_longest_match() {
        assert_eq!(texts("a <<= b"), vec!["a", "<<=", "b"]);
        assert_eq!(texts("0..=9"), vec!["0", "..=", "9"]);
        assert_eq!(texts("a == b != c"), vec!["a", "==", "b", "!=", "c"]);
        assert_eq!(
            texts("x :: y -> z => w"),
            vec!["x", "::", "y", "->", "z", "=>", "w"]
        );
    }

    #[test]
    fn line_numbers_track_newlines() {
        let src = "a\nb\r\nc /* x\ny */ d\ne";
        let lines: Vec<(String, u32)> = lex(src)
            .into_iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| (src[t.start..t.end].to_string(), t.line))
            .collect();
        assert_eq!(
            lines,
            vec![
                ("a".into(), 1),
                ("b".into(), 2),
                ("c".into(), 3),
                ("/* x\ny */".into(), 3),
                ("d".into(), 4),
                ("e".into(), 5),
            ]
        );
    }

    #[test]
    fn line_comment_excludes_newline() {
        let src = "x // tail\ny";
        let tokens = lex(src);
        let comment = tokens
            .iter()
            .find(|t| t.kind == TokenKind::LineComment)
            .unwrap();
        assert_eq!(&src[comment.start..comment.end], "// tail");
        assert_eq!(
            kinds(src),
            vec![TokenKind::Ident, TokenKind::LineComment, TokenKind::Ident]
        );
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(lex("").is_empty());
        let tokens = lex("  \n\t ");
        assert_eq!(tokens.len(), 1);
        assert_eq!(tokens[0].kind, TokenKind::Whitespace);
    }
}
