//! The committed baseline of grandfathered findings.
//!
//! Format (one entry per line, tab-separated):
//!
//! ```text
//! <rule>\t<path>\t<trimmed source line>\t<justification>
//! ```
//!
//! Blank lines and lines starting with `#` are comments. A finding is
//! baselined when its `(rule, path, trimmed line)` triple matches an
//! entry — line *numbers* are deliberately not part of the key, so
//! unrelated edits above a grandfathered site don't invalidate it, while
//! any edit to the offending line itself surfaces the finding again.
//!
//! Every entry must carry a non-empty justification; an entry without one
//! becomes a `B1` finding against the baseline file itself. Entries that
//! no longer match anything are reported as stale so the file shrinks
//! over time instead of rotting.

use crate::rules::Finding;

/// One parsed baseline entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineEntry {
    /// Rule id this entry grandfathers.
    pub rule: String,
    /// Workspace-relative path of the finding.
    pub path: String,
    /// Trimmed source line of the finding (the match key).
    pub snippet: String,
    /// Why this finding is acceptable.
    pub justification: String,
    /// 1-based line in the baseline file (for B1/stale reporting).
    pub file_line: u32,
}

/// Parses a baseline file. Malformed lines are hard errors: a baseline
/// that silently drops entries would un-grandfather findings at random.
pub fn parse(text: &str) -> Result<Vec<BaselineEntry>, String> {
    let mut entries = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let file_line = idx as u32 + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(4, '\t');
        let (Some(rule), Some(path), Some(snippet)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {file_line}: expected `rule<TAB>path<TAB>snippet<TAB>justification`"
            ));
        };
        let justification = parts.next().unwrap_or("").trim().to_string();
        entries.push(BaselineEntry {
            rule: rule.trim().to_string(),
            path: path.trim().to_string(),
            snippet: snippet.trim().to_string(),
            justification,
            file_line,
        });
    }
    Ok(entries)
}

/// Serialises findings as baseline entries (for `--write-baseline`).
/// Justifications are emitted as `TODO` so a freshly written baseline
/// immediately fails B1 until a human fills in the reasons.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::from(
        "# pf-lint baseline: grandfathered findings.\n\
         # Format: rule<TAB>path<TAB>trimmed source line<TAB>justification\n\
         # Every entry needs a real justification; `TODO` fails the B1 rule.\n",
    );
    for f in findings {
        out.push_str(&format!("{}\t{}\t{}\tTODO\n", f.rule, f.path, f.snippet));
    }
    out
}

/// The outcome of filtering findings through the baseline.
#[derive(Debug, Default)]
pub struct BaselineResult {
    /// Findings not covered by any entry — these fail the build.
    pub remaining: Vec<Finding>,
    /// Number of findings absorbed by the baseline.
    pub baselined: usize,
    /// Entries that matched no finding (stale; reported as warnings).
    pub stale: Vec<BaselineEntry>,
}

/// Applies the baseline: removes covered findings, adds `B1` findings for
/// unjustified entries, and collects stale entries.
pub fn apply(
    findings: Vec<Finding>,
    entries: &[BaselineEntry],
    baseline_path: &str,
) -> BaselineResult {
    let mut result = BaselineResult::default();
    let mut entry_used = vec![false; entries.len()];
    for finding in findings {
        let hit = entries.iter().position(|e| {
            e.rule == finding.rule && e.path == finding.path && e.snippet == finding.snippet
        });
        match hit {
            Some(idx) => {
                entry_used[idx] = true;
                result.baselined += 1;
            }
            None => result.remaining.push(finding),
        }
    }
    for (entry, used) in entries.iter().zip(&entry_used) {
        if !used {
            result.stale.push(entry.clone());
        }
        let unjustified = entry.justification.is_empty() || entry.justification == "TODO";
        if unjustified {
            result.remaining.push(Finding {
                rule: "B1",
                path: baseline_path.to_string(),
                line: entry.file_line,
                message: format!(
                    "baseline entry for {} at `{}` has no justification — grandfathering \
                     a finding requires writing down why it is safe",
                    entry.rule, entry.path
                ),
                snippet: format!("{}\t{}\t{}", entry.rule, entry.path, entry.snippet),
            });
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: u32, snippet: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line,
            message: "m".to_string(),
            snippet: snippet.to_string(),
        }
    }

    #[test]
    fn roundtrip_and_match_by_snippet_not_line() {
        let text =
            "# comment\n\nD1\tcrates/sim/src/x.rs\tuse std::collections::HashMap;\tlookups only\n";
        let entries = parse(text).unwrap();
        assert_eq!(entries.len(), 1);
        // Same snippet on a *different* line still matches.
        let result = apply(
            vec![finding(
                "D1",
                "crates/sim/src/x.rs",
                99,
                "use std::collections::HashMap;",
            )],
            &entries,
            "lint-baseline.tsv",
        );
        assert!(result.remaining.is_empty());
        assert_eq!(result.baselined, 1);
        assert!(result.stale.is_empty());
    }

    #[test]
    fn unmatched_findings_remain_and_unmatched_entries_go_stale() {
        let entries = parse("D1\ta.rs\told line\twhy\n").unwrap();
        let result = apply(
            vec![finding("D1", "a.rs", 1, "new line")],
            &entries,
            "b.tsv",
        );
        assert_eq!(result.remaining.len(), 1);
        assert_eq!(result.stale.len(), 1);
    }

    #[test]
    fn unjustified_entry_is_b1() {
        let entries = parse("D1\ta.rs\tline\tTODO\nD2\tb.rs\tline\t\n").unwrap();
        let result = apply(Vec::new(), &entries, "lint-baseline.tsv");
        let b1: Vec<_> = result.remaining.iter().filter(|f| f.rule == "B1").collect();
        assert_eq!(b1.len(), 2);
        assert_eq!(b1[0].path, "lint-baseline.tsv");
        assert_eq!(b1[0].line, 1);
    }

    #[test]
    fn malformed_line_is_an_error() {
        assert!(parse("just one field\n").is_err());
    }

    #[test]
    fn render_then_parse() {
        let rendered = render(&[finding("D1", "a.rs", 3, "let m = HashMap::new();")]);
        let entries = parse(&rendered).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].justification, "TODO");
    }
}
