//! The determinism rule catalog.
//!
//! Every headline number this repository reports rests on one invariant:
//! a simulation replays **bit-identically** from its seed. The rules here
//! mechanically reject the construct families that have historically
//! broken that contract (see `docs/static-analysis.md` for the rationale
//! and the suppression/baseline workflow):
//!
//! * **D1** — `HashMap`/`HashSet` in determinism-scoped crates
//!   (`pf-sim`, `pf-kvcache`, `pf-autoscale`, `pf-core`), where iteration
//!   order can leak into events, reports, or routing. Use
//!   `BTreeMap`/`BTreeSet` or sort explicitly; key-addressed-only maps
//!   may carry a justified `allow`.
//! * **D2** — wall-clock and ambient RNG (`Instant::now`, `SystemTime`,
//!   `thread_rng`, `rand::random`) outside the shims and the bench timing
//!   module.
//! * **D3** — RNG construction that does not flow from an explicit seed
//!   (`from_seed`/`seed_from_u64`) in non-shim crates.
//! * **D4** — side-effecting expressions inside `debug_assert!` family
//!   macros (assignments or known-mutating method calls), which make
//!   debug and release builds diverge.
//! * **X1** — (cross-file) every `RouterPolicy`, `TransferMode`, and
//!   `QueueOrder` variant must appear in at least one golden fingerprint
//!   scenario in `report_equivalence.rs`, so new config surface cannot
//!   ship un-goldened.
//! * **S1** — an inline suppression without a justification.
//!
//! Rules operate on lexed tokens (comments and strings are separate
//! tokens), so a `HashMap` in a doc comment never false-positives.

use crate::source::SourceFile;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule id (`D1` … `D4`, `X1`, `S1`, `B1`).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// Human-readable description.
    pub message: String,
    /// Trimmed source line (the baseline match key).
    pub snippet: String,
}

/// Static description of one rule, for `--help` and the docs.
pub struct RuleInfo {
    /// Rule id.
    pub id: &'static str,
    /// One-line summary.
    pub summary: &'static str,
}

/// The full catalog.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "D1",
        summary: "no HashMap/HashSet in determinism-scoped crates (iteration order can escape)",
    },
    RuleInfo {
        id: "D2",
        summary: "no Instant::now/SystemTime/thread_rng/rand::random outside shims + bench timing",
    },
    RuleInfo {
        id: "D3",
        summary: "RNG construction must flow from an explicit seed (from_seed/seed_from_u64)",
    },
    RuleInfo {
        id: "D4",
        summary: "no side-effecting expressions inside debug_assert!/debug_assert_eq!",
    },
    RuleInfo {
        id: "X1",
        summary: "every RouterPolicy/TransferMode/QueueOrder variant appears in a golden scenario",
    },
    RuleInfo {
        id: "S1",
        summary: "inline pf-lint allow() suppressions must carry a justification",
    },
    RuleInfo {
        id: "B1",
        summary: "baseline entries must carry a justification",
    },
];

/// Crates whose `src/` trees are determinism-scoped for D1.
const D1_CRATES: &[&str] = &["sim", "kvcache", "autoscale", "core"];

/// Path prefixes exempt from D2 (the only code allowed to read ambient
/// time/randomness).
const D2_ALLOWED_PREFIXES: &[&str] = &["crates/shims/"];

/// Exact paths exempt from D2 (the bench wall-clock timing module).
const D2_ALLOWED_FILES: &[&str] = &["crates/bench/src/timing.rs"];

/// RNG type names whose associated-function calls D3 inspects.
const D3_RNG_TYPES: &[&str] = &["StdRng", "SmallRng", "ThreadRng"];

/// The only RNG constructors D3 accepts: both take an explicit seed.
const D3_SEEDED_CTORS: &[&str] = &["from_seed", "seed_from_u64"];

/// Method names D4 treats as mutating when called inside a debug assert.
const D4_MUTATORS: &[&str] = &[
    "push",
    "push_back",
    "push_front",
    "push_str",
    "pop",
    "pop_back",
    "pop_front",
    "insert",
    "remove",
    "remove_entry",
    "clear",
    "drain",
    "retain",
    "truncate",
    "extend",
    "extend_from_slice",
    "append",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "swap",
    "swap_remove",
    "set",
    "next",
];

/// Assignment operators D4 flags inside a debug assert.
const D4_ASSIGN_OPS: &[&str] = &[
    "=", "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<=", ">>=",
];

/// Enums X1 requires golden coverage for.
const X1_ENUMS: &[&str] = &["RouterPolicy", "TransferMode", "QueueOrder"];

/// The golden fingerprint suite X1 checks against.
pub const X1_GOLDEN_FILE: &str = "crates/bench/tests/report_equivalence.rs";

fn in_d1_scope(path: &str) -> bool {
    D1_CRATES
        .iter()
        .any(|c| path.starts_with(&format!("crates/{c}/src/")))
}

fn in_d2_allowed(path: &str) -> bool {
    D2_ALLOWED_PREFIXES.iter().any(|p| path.starts_with(p)) || D2_ALLOWED_FILES.contains(&path)
}

fn push(out: &mut Vec<Finding>, rule: &'static str, file: &SourceFile, line: u32, message: String) {
    out.push(Finding {
        rule,
        path: file.rel_path.clone(),
        line,
        message,
        snippet: file.line_text(line).to_string(),
    });
}

/// D1: hash-ordered collections in determinism-scoped crates.
fn rule_d1(file: &SourceFile, out: &mut Vec<Finding>) {
    if !in_d1_scope(&file.rel_path) {
        return;
    }
    for i in 0..file.sig.len() {
        let t = *file.sig_token(i).expect("in range");
        if t.kind != crate::lexer::TokenKind::Ident {
            continue;
        }
        let text = file.slice(&t);
        if (text == "HashMap" || text == "HashSet") && !file.in_test_mask(t.start) {
            push(
                out,
                "D1",
                file,
                t.line,
                format!(
                    "`{text}` in a determinism-scoped crate: iteration order can leak into \
                     events, reports, or routing — use BTreeMap/BTreeSet, sort before \
                     iterating, or justify with `// pf-lint: allow(D1): <why order never \
                     escapes>`"
                ),
            );
        }
    }
}

/// D2: ambient wall-clock / process-seeded randomness.
fn rule_d2(file: &SourceFile, out: &mut Vec<Finding>) {
    if in_d2_allowed(&file.rel_path) {
        return;
    }
    for i in 0..file.sig.len() {
        let Some(text) = file.sig_text(i) else {
            continue;
        };
        let t = *file.sig_token(i).expect("in range");
        if t.kind != crate::lexer::TokenKind::Ident {
            continue;
        }
        let hazard = match text {
            "SystemTime" => Some("`SystemTime` reads the host clock".to_string()),
            "thread_rng" => Some("`thread_rng` is process-seeded".to_string()),
            "Instant"
                if file.sig_text(i + 1) == Some("::") && file.sig_text(i + 2) == Some("now") =>
            {
                Some("`Instant::now` reads the host clock".to_string())
            }
            "rand"
                if file.sig_text(i + 1) == Some("::") && file.sig_text(i + 2) == Some("random") =>
            {
                Some("`rand::random` is process-seeded".to_string())
            }
            _ => None,
        };
        if let Some(what) = hazard {
            push(
                out,
                "D2",
                file,
                t.line,
                format!(
                    "{what} — replay from a seed cannot reproduce it; only the shims and \
                     `crates/bench/src/timing.rs` may touch ambient time/randomness"
                ),
            );
        }
    }
}

/// D3: RNG construction not flowing from an explicit seed.
fn rule_d3(file: &SourceFile, out: &mut Vec<Finding>) {
    if file.rel_path.starts_with("crates/shims/") {
        return;
    }
    for i in 0..file.sig.len() {
        let Some(text) = file.sig_text(i) else {
            continue;
        };
        if !D3_RNG_TYPES.contains(&text) {
            continue;
        }
        if file.sig_text(i + 1) != Some("::") {
            continue;
        }
        let Some(method) = file.sig_text(i + 2) else {
            continue;
        };
        let t = *file.sig_token(i).expect("in range");
        if file.sig_token(i + 2).expect("checked").kind == crate::lexer::TokenKind::Ident
            && !D3_SEEDED_CTORS.contains(&method)
        {
            let method = method.to_string();
            push(
                out,
                "D3",
                file,
                t.line,
                format!(
                    "`{text}::{method}` — RNG construction must flow from an explicit seed \
                     (`from_seed`/`seed_from_u64`), so whole experiments replay from one u64"
                ),
            );
        }
    }
}

/// D4: side effects inside `debug_assert!` family macros, which vanish in
/// release builds and make debug/release replays diverge.
fn rule_d4(file: &SourceFile, out: &mut Vec<Finding>) {
    let mut i = 0;
    while i < file.sig.len() {
        let name = file.sig_text(i);
        let is_da = matches!(
            name,
            Some("debug_assert") | Some("debug_assert_eq") | Some("debug_assert_ne")
        );
        if !is_da || file.sig_text(i + 1) != Some("!") {
            i += 1;
            continue;
        }
        let open = i + 2;
        if !matches!(file.sig_text(open), Some("(") | Some("[") | Some("{")) {
            i += 1;
            continue;
        }
        let macro_tok = *file.sig_token(i).expect("in range");
        if file.in_test_mask(macro_tok.start) {
            i += 1;
            continue;
        }
        // Walk the macro body (delimiters of all three kinds nest).
        let mut depth = 0usize;
        let mut j = open;
        while let Some(text) = file.sig_text(j) {
            match text {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ if depth >= 1 => {
                    let t = *file.sig_token(j).expect("in range");
                    if t.kind == crate::lexer::TokenKind::Punct && D4_ASSIGN_OPS.contains(&text) {
                        let op = text.to_string();
                        push(
                            out,
                            "D4",
                            file,
                            t.line,
                            format!(
                                "assignment (`{op}`) inside `{}` — the expression vanishes in \
                                 release builds, so debug and release replays diverge",
                                name.expect("matched above")
                            ),
                        );
                    }
                    if t.kind == crate::lexer::TokenKind::Ident
                        && D4_MUTATORS.contains(&text)
                        && file.sig_text(j.wrapping_sub(1)) == Some(".")
                        && file.sig_text(j + 1) == Some("(")
                    {
                        let method = text.to_string();
                        push(
                            out,
                            "D4",
                            file,
                            t.line,
                            format!(
                                "mutating call `.{method}(...)` inside `{}` — the expression \
                                 vanishes in release builds, so debug and release replays \
                                 diverge",
                                name.expect("matched above")
                            ),
                        );
                    }
                }
                _ => {}
            }
            j += 1;
        }
        i = j + 1;
    }
}

/// S1: suppressions without a justification.
fn rule_s1(file: &SourceFile, out: &mut Vec<Finding>) {
    for s in file.suppressions() {
        if !s.justified {
            let rules = s.rules.join(", ");
            push(
                out,
                "S1",
                file,
                s.comment_line,
                format!(
                    "suppression `allow({rules})` has no justification — write \
                     `// pf-lint: allow({rules}): <why this is safe>`"
                ),
            );
        }
    }
}

/// Extracts the variant names of `enum <name>` from a file, if defined.
fn enum_variants(file: &SourceFile, name: &str) -> Option<Vec<(String, u32)>> {
    let n = file.sig.len();
    for i in 0..n {
        if file.sig_text(i) != Some("enum") || file.sig_text(i + 1) != Some(name) {
            continue;
        }
        if file.sig_text(i + 2) != Some("{") {
            continue;
        }
        let mut variants = Vec::new();
        let mut depth = 0usize;
        let mut expecting = true;
        let mut j = i + 2;
        while let Some(text) = file.sig_text(j) {
            match text {
                "{" | "(" | "[" => {
                    if text == "{" {
                        depth += 1;
                        if depth == 1 {
                            j += 1;
                            continue;
                        }
                    } else {
                        depth += 1;
                    }
                }
                "}" | ")" | "]" => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(variants);
                    }
                }
                "," if depth == 1 => expecting = true,
                // Skip `#[…]` attribute groups between variants.
                "#" if depth == 1 && file.sig_text(j + 1) == Some("[") => {
                    let mut adepth = 0usize;
                    j += 1;
                    while let Some(a) = file.sig_text(j) {
                        match a {
                            "[" => adepth += 1,
                            "]" => {
                                adepth -= 1;
                                if adepth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                        j += 1;
                    }
                }
                _ if depth == 1 && expecting => {
                    let t = *file.sig_token(j).expect("in range");
                    if t.kind == crate::lexer::TokenKind::Ident {
                        variants.push((text.to_string(), t.line));
                        expecting = false;
                    }
                }
                _ => {}
            }
            j += 1;
        }
        return Some(variants);
    }
    None
}

/// X1: every tracked enum variant must appear (as an identifier) in the
/// golden fingerprint suite, so new config surface cannot ship without a
/// pinned replay scenario.
fn rule_x1(files: &[SourceFile], out: &mut Vec<Finding>) {
    let golden = files.iter().find(|f| f.rel_path == X1_GOLDEN_FILE);
    let golden_idents: std::collections::HashSet<&str> = match golden {
        Some(g) => g
            .sig
            .iter()
            .map(|&idx| &g.tokens[idx])
            .filter(|t| t.kind == crate::lexer::TokenKind::Ident)
            .map(|t| g.slice(t))
            .collect(),
        None => Default::default(),
    };
    for file in files {
        for name in X1_ENUMS {
            let Some(variants) = enum_variants(file, name) else {
                continue;
            };
            if golden.is_none() {
                push(
                    out,
                    "X1",
                    file,
                    file.sig_token(0).map_or(1, |t| t.line),
                    format!(
                        "`{name}` is defined but the golden suite `{X1_GOLDEN_FILE}` was not \
                         found in the lint set — cannot verify variant coverage"
                    ),
                );
                continue;
            }
            for (variant, line) in variants {
                if !golden_idents.contains(variant.as_str()) {
                    push(
                        out,
                        "X1",
                        file,
                        line,
                        format!(
                            "`{name}::{variant}` appears in no golden fingerprint scenario \
                             ({X1_GOLDEN_FILE}) — pin a replay scenario before shipping new \
                             config surface"
                        ),
                    );
                }
            }
        }
    }
}

/// The outcome of a lint pass, after suppression filtering.
#[derive(Debug, Default)]
pub struct LintOutcome {
    /// Findings that survived suppression (still subject to the baseline).
    pub findings: Vec<Finding>,
    /// Findings silenced by a justified or unjustified inline allow.
    pub suppressed: usize,
    /// Suppression comments that silenced nothing (path, line, rules).
    pub unused_suppressions: Vec<(String, u32, String)>,
}

/// Runs the whole catalog over a file set and applies inline suppressions.
pub fn run_rules(files: &[SourceFile]) -> LintOutcome {
    let mut raw = Vec::new();
    for file in files {
        rule_d1(file, &mut raw);
        rule_d2(file, &mut raw);
        rule_d3(file, &mut raw);
        rule_d4(file, &mut raw);
        rule_s1(file, &mut raw);
    }
    rule_x1(files, &mut raw);

    // One finding per (rule, file, line): several hazards on one line are
    // one reviewable unit (and one baseline entry).
    raw.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    raw.dedup_by(|a, b| a.rule == b.rule && a.path == b.path && a.line == b.line);

    let mut outcome = LintOutcome::default();
    let mut used: std::collections::HashSet<(String, u32, String)> = Default::default();
    for finding in raw {
        let file = files.iter().find(|f| f.rel_path == finding.path);
        let suppressed =
            finding.rule != "S1" && file.is_some_and(|f| f.suppressed(finding.rule, finding.line));
        if suppressed {
            outcome.suppressed += 1;
            if let Some(f) = file {
                for s in f.suppressions() {
                    if s.applies_line == finding.line && s.rules.iter().any(|r| r == finding.rule) {
                        used.insert((f.rel_path.clone(), s.comment_line, finding.rule.to_string()));
                    }
                }
            }
        } else {
            outcome.findings.push(finding);
        }
    }
    for file in files {
        for s in file.suppressions() {
            let any_used = s
                .rules
                .iter()
                .any(|r| used.contains(&(file.rel_path.clone(), s.comment_line, r.clone())));
            if !any_used {
                outcome.unused_suppressions.push((
                    file.rel_path.clone(),
                    s.comment_line,
                    s.rules.join(", "),
                ));
            }
        }
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(path: &str, src: &str) -> SourceFile {
        SourceFile::new(path, src)
    }

    fn rules_of(outcome: &LintOutcome) -> Vec<&'static str> {
        outcome.findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn d1_fires_only_in_scoped_crates_and_outside_tests() {
        let scoped = file(
            "crates/sim/src/x.rs",
            "use std::collections::HashMap;\n#[cfg(test)]\nmod tests { fn f(m: std::collections::HashSet<u32>) {} }\n",
        );
        let outcome = run_rules(&[scoped]);
        assert_eq!(
            rules_of(&outcome),
            vec!["D1"],
            "only the non-test use line fires"
        );
        let unscoped = file(
            "crates/workload/src/x.rs",
            "use std::collections::HashMap;\n",
        );
        assert!(run_rules(&[unscoped]).findings.is_empty());
    }

    #[test]
    fn d1_ignores_comments_and_strings() {
        let f = file(
            "crates/kvcache/src/x.rs",
            "//! Unlike a HashMap, this is ordered.\nconst NAME: &str = \"HashMap\";\n",
        );
        assert!(run_rules(&[f]).findings.is_empty());
    }

    #[test]
    fn d2_catches_clock_and_ambient_rng() {
        let f = file(
            "crates/sim/src/x.rs",
            "fn f() { let t = Instant::now(); let r: u8 = rand::random(); let g = thread_rng(); }\n",
        );
        let outcome = run_rules(&[f]);
        assert_eq!(outcome.findings.len(), 1, "one D4-style dedupe per line");
        assert_eq!(outcome.findings[0].rule, "D2");
        // Instant *without* ::now (e.g. a type mention) does not fire.
        let ok = file("crates/sim/src/y.rs", "fn f(t: std::time::Instant) {}\n");
        assert!(run_rules(&[ok]).findings.is_empty());
        // Shims and the bench timing module are exempt.
        let shim = file(
            "crates/shims/criterion/src/lib.rs",
            "fn f() { Instant::now(); }\n",
        );
        assert!(run_rules(&[shim]).findings.is_empty());
        let timing = file("crates/bench/src/timing.rs", "fn f() { Instant::now(); }\n");
        assert!(run_rules(&[timing]).findings.is_empty());
    }

    #[test]
    fn d3_requires_seeded_constructors() {
        let bad = file(
            "crates/workload/src/x.rs",
            "fn f() { let r = StdRng::from_entropy(); }\n",
        );
        assert_eq!(rules_of(&run_rules(&[bad])), vec!["D3"]);
        let good = file(
            "crates/workload/src/y.rs",
            "fn f() { let a = StdRng::seed_from_u64(7); let b = StdRng::from_seed([0; 32]); }\n",
        );
        assert!(run_rules(&[good]).findings.is_empty());
    }

    #[test]
    fn d4_catches_assignment_and_mutating_calls() {
        let bad = file(
            "crates/sim/src/x.rs",
            "fn f(mut v: Vec<u32>, mut x: u32) {\n    debug_assert!(v.pop().is_some());\n    debug_assert!({ x += 1; x > 0 });\n}\n",
        );
        let outcome = run_rules(&[bad]);
        assert_eq!(rules_of(&outcome), vec!["D4", "D4"]);
        let good = file(
            "crates/sim/src/y.rs",
            "fn f(v: &[u64], kv: u64) { debug_assert_eq!(kv, v.iter().copied().sum::<u64>()); }\n",
        );
        assert!(run_rules(&[good]).findings.is_empty());
    }

    #[test]
    fn d4_comparisons_are_not_assignments() {
        let f = file(
            "crates/sim/src/x.rs",
            "fn f(a: u32, b: u32) { debug_assert!(a <= b && a != b || a >= b); }\n",
        );
        assert!(run_rules(&[f]).findings.is_empty());
    }

    #[test]
    fn x1_flags_ungoldened_variants() {
        let enum_file = file(
            "crates/sim/src/cluster.rs",
            "/// Policy.\npub enum RouterPolicy {\n    /// Doc.\n    RoundRobin,\n    KvOverlap { overlap_weight: f64, temperature: f64 },\n}\n",
        );
        let golden = file(
            super::X1_GOLDEN_FILE,
            "fn f() { let p = RouterPolicy::KvOverlap { overlap_weight: 1.0, temperature: 0.2 }; }\n",
        );
        let outcome = run_rules(&[enum_file, golden]);
        assert_eq!(outcome.findings.len(), 1);
        assert_eq!(outcome.findings[0].rule, "X1");
        assert!(outcome.findings[0]
            .message
            .contains("RouterPolicy::RoundRobin"));
    }

    #[test]
    fn x1_parses_struct_variants_and_attributes() {
        let enum_file = file(
            "crates/sim/src/config.rs",
            "pub enum QueueOrder {\n    #[default]\n    Fifo,\n    LeastSlackFirst { aging_cap: SimDuration },\n}\n",
        );
        let golden = file(
            super::X1_GOLDEN_FILE,
            "fn f() { let a = QueueOrder::Fifo; let b = QueueOrder::LeastSlackFirst { aging_cap: X }; }\n",
        );
        assert!(run_rules(&[enum_file, golden]).findings.is_empty());
    }

    #[test]
    fn suppressions_silence_and_track_usage() {
        let f = file(
            "crates/sim/src/x.rs",
            "use std::collections::HashMap; // pf-lint: allow(D1): key-addressed lookups only\n\
             // pf-lint: allow(D2): never fires here\n\
             fn f() {}\n",
        );
        let outcome = run_rules(&[f]);
        assert!(outcome.findings.is_empty());
        assert_eq!(outcome.suppressed, 1);
        assert_eq!(outcome.unused_suppressions.len(), 1);
        assert_eq!(outcome.unused_suppressions[0].1, 2);
    }

    #[test]
    fn unjustified_suppression_is_s1_but_still_suppresses() {
        let f = file(
            "crates/sim/src/x.rs",
            "use std::collections::HashMap; // pf-lint: allow(D1)\n",
        );
        let outcome = run_rules(&[f]);
        assert_eq!(rules_of(&outcome), vec!["S1"]);
        assert_eq!(outcome.suppressed, 1);
    }
}
