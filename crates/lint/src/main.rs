//! The `pf-lint` command-line interface.
//!
//! ```text
//! pf-lint --workspace [--root <dir>] [--baseline <file>] [--format=text|json]
//! pf-lint --self-test
//! pf-lint --write-baseline
//! pf-lint --list-rules
//! ```
//!
//! Exit codes: 0 clean (or baselined/suppressed only), 1 findings,
//! 2 usage or I/O error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use pf_lint::baseline;
use pf_lint::rules::{run_rules, Finding, LintOutcome, RULES};
use pf_lint::source::SourceFile;
use pf_lint::workspace;

const DEFAULT_BASELINE: &str = "lint-baseline.tsv";

struct Options {
    root: Option<PathBuf>,
    baseline: Option<PathBuf>,
    json: bool,
    self_test: bool,
    write_baseline: bool,
    list_rules: bool,
}

fn usage() -> String {
    let mut s = String::from(
        "pf-lint: workspace determinism linter\n\n\
         USAGE:\n\
         \x20   pf-lint --workspace [OPTIONS]   lint every .rs file in the workspace\n\
         \x20   pf-lint --self-test             run the rule catalog against embedded fixtures\n\
         \x20   pf-lint --write-baseline        emit a baseline covering all current findings\n\
         \x20   pf-lint --list-rules            print the rule catalog\n\n\
         OPTIONS:\n\
         \x20   --root <dir>        workspace root (default: ascend from cwd to [workspace])\n\
         \x20   --baseline <file>   baseline file (default: <root>/lint-baseline.tsv)\n\
         \x20   --format=text|json  output format (default: text)\n\n\
         RULES:\n",
    );
    for rule in RULES {
        s.push_str(&format!("    {}  {}\n", rule.id, rule.summary));
    }
    s
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        baseline: None,
        json: false,
        self_test: false,
        write_baseline: false,
        list_rules: false,
    };
    let mut saw_mode = false;
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        match arg {
            "--workspace" => saw_mode = true,
            "--self-test" => {
                opts.self_test = true;
                saw_mode = true;
            }
            "--write-baseline" => {
                opts.write_baseline = true;
                saw_mode = true;
            }
            "--list-rules" => {
                opts.list_rules = true;
                saw_mode = true;
            }
            "--format=text" => opts.json = false,
            "--format=json" => opts.json = true,
            "--format" => {
                i += 1;
                match args.get(i).map(String::as_str) {
                    Some("text") => opts.json = false,
                    Some("json") => opts.json = true,
                    other => return Err(format!("--format expects text|json, got {other:?}")),
                }
            }
            "--root" => {
                i += 1;
                let v = args.get(i).ok_or("--root expects a directory")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--baseline" => {
                i += 1;
                let v = args.get(i).ok_or("--baseline expects a file")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--help" | "-h" => return Err(usage()),
            other => return Err(format!("unknown argument `{other}`\n\n{}", usage())),
        }
        i += 1;
    }
    if !saw_mode {
        return Err(format!("no mode given\n\n{}", usage()));
    }
    Ok(opts)
}

fn load_files(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let paths = workspace::collect_rs_files(root)?;
    let mut files = Vec::with_capacity(paths.len());
    for path in paths {
        let text = std::fs::read_to_string(&path)?;
        files.push(SourceFile::new(workspace::rel_path(root, &path), text));
    }
    Ok(files)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_finding(f: &Finding) -> String {
    format!(
        "{{\"rule\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\",\"snippet\":\"{}\"}}",
        json_escape(f.rule),
        json_escape(&f.path),
        f.line,
        json_escape(&f.message),
        json_escape(&f.snippet)
    )
}

fn render_json(
    remaining: &[Finding],
    outcome: &LintOutcome,
    baselined: usize,
    stale: &[baseline::BaselineEntry],
) -> String {
    let findings: Vec<String> = remaining.iter().map(json_finding).collect();
    let stale: Vec<String> = stale
        .iter()
        .map(|e| {
            format!(
                "{{\"rule\":\"{}\",\"path\":\"{}\",\"baseline_line\":{}}}",
                json_escape(&e.rule),
                json_escape(&e.path),
                e.file_line
            )
        })
        .collect();
    let unused: Vec<String> = outcome
        .unused_suppressions
        .iter()
        .map(|(path, line, rules)| {
            format!(
                "{{\"path\":\"{}\",\"line\":{},\"rules\":\"{}\"}}",
                json_escape(path),
                line,
                json_escape(rules)
            )
        })
        .collect();
    format!(
        "{{\"findings\":[{}],\"counts\":{{\"findings\":{},\"baselined\":{},\"suppressed\":{}}},\
         \"stale_baseline\":[{}],\"unused_suppressions\":[{}]}}\n",
        findings.join(","),
        remaining.len(),
        baselined,
        outcome.suppressed,
        stale.join(","),
        unused.join(",")
    )
}

fn render_text(
    remaining: &[Finding],
    outcome: &LintOutcome,
    baselined: usize,
    stale: &[baseline::BaselineEntry],
) -> String {
    let mut out = String::new();
    for f in remaining {
        out.push_str(&format!(
            "{}: {}:{}: {}\n    {}\n",
            f.rule, f.path, f.line, f.message, f.snippet
        ));
    }
    for e in stale {
        out.push_str(&format!(
            "warning: stale baseline entry ({} at `{}`, baseline line {}) — matches nothing; remove it\n",
            e.rule, e.path, e.file_line
        ));
    }
    for (path, line, rules) in &outcome.unused_suppressions {
        out.push_str(&format!(
            "warning: unused suppression allow({rules}) at {path}:{line} — suppresses nothing; remove it\n"
        ));
    }
    out.push_str(&format!(
        "pf-lint: {} finding(s), {} baselined, {} suppressed\n",
        remaining.len(),
        baselined,
        outcome.suppressed
    ));
    out
}

fn run() -> Result<ExitCode, String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = parse_args(&args)?;

    if opts.list_rules {
        print!("{}", usage());
        return Ok(ExitCode::SUCCESS);
    }

    if opts.self_test {
        return match pf_lint::selftest::run() {
            Ok(report) => {
                for line in report {
                    println!("ok: {line}");
                }
                println!("pf-lint --self-test: all rules fire");
                Ok(ExitCode::SUCCESS)
            }
            Err(failures) => {
                for line in failures {
                    eprintln!("FAIL: {line}");
                }
                Ok(ExitCode::FAILURE)
            }
        };
    }

    let cwd = std::env::current_dir().map_err(|e| format!("cannot read cwd: {e}"))?;
    let root = match &opts.root {
        Some(root) => root.clone(),
        None => workspace::find_root(&cwd)
            .ok_or("no [workspace] Cargo.toml found above the current directory")?,
    };
    let files = load_files(&root).map_err(|e| format!("reading workspace: {e}"))?;
    let outcome = run_rules(&files);

    if opts.write_baseline {
        let path = opts
            .baseline
            .clone()
            .unwrap_or_else(|| root.join(DEFAULT_BASELINE));
        std::fs::write(&path, baseline::render(&outcome.findings))
            .map_err(|e| format!("writing {}: {e}", path.display()))?;
        eprintln!(
            "pf-lint: wrote {} entries to {} (justifications are TODO — fill them in)",
            outcome.findings.len(),
            path.display()
        );
        return Ok(ExitCode::SUCCESS);
    }

    let baseline_path = opts
        .baseline
        .clone()
        .unwrap_or_else(|| root.join(DEFAULT_BASELINE));
    let entries = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => baseline::parse(&text)?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(format!("reading {}: {e}", baseline_path.display())),
    };
    let rel_baseline = workspace::rel_path(&root, &baseline_path);
    let result = baseline::apply(outcome.findings.clone(), &entries, &rel_baseline);

    let rendered = if opts.json {
        render_json(&result.remaining, &outcome, result.baselined, &result.stale)
    } else {
        render_text(&result.remaining, &outcome, result.baselined, &result.stale)
    };
    print!("{rendered}");

    Ok(if result.remaining.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("{msg}");
            ExitCode::from(2)
        }
    }
}
