//! `pf-lint --self-test`: runs the rule catalog against embedded
//! known-bad fixtures and asserts that **every** rule fires, plus a
//! known-good fixture asserting zero findings. This guards the linter
//! itself: a refactor that silently disables a rule fails CI even if the
//! real tree happens to be clean.

use crate::rules::{run_rules, RULES, X1_GOLDEN_FILE};
use crate::source::SourceFile;

/// One known-bad fixture: `src` at `path` must trigger `rule`.
struct Fixture {
    rule: &'static str,
    path: &'static str,
    src: &'static str,
}

const BAD_FIXTURES: &[Fixture] = &[
    Fixture {
        rule: "D1",
        path: "crates/sim/src/bad_d1.rs",
        src: "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); for (k, _) in &m {} }\n",
    },
    Fixture {
        rule: "D2",
        path: "crates/workload/src/bad_d2.rs",
        src: "fn f() { let t = std::time::Instant::now(); let _ = t; }\n",
    },
    Fixture {
        rule: "D3",
        path: "crates/workload/src/bad_d3.rs",
        src: "fn f() { let rng = StdRng::from_entropy(); }\n",
    },
    Fixture {
        rule: "D4",
        path: "crates/sim/src/bad_d4.rs",
        src: "fn f(mut v: Vec<u32>) { debug_assert!(v.pop().is_some()); }\n",
    },
    Fixture {
        rule: "S1",
        path: "crates/sim/src/bad_s1.rs",
        src: "use std::collections::HashMap; // pf-lint: allow(D1)\n",
    },
    Fixture {
        rule: "B1",
        path: "", // B1 comes from the baseline, not a source file
        src: "",
    },
    Fixture {
        rule: "X1",
        path: "crates/sim/src/bad_x1.rs",
        src: "pub enum RouterPolicy {\n    RoundRobin,\n    UnpinnedPolicy,\n}\n",
    },
];

/// A fixture that must produce **zero** findings: exercises test-mask
/// exemption, justified suppression, comment/string immunity, and the
/// seeded-RNG happy path all at once.
const GOOD_FIXTURE: (&str, &str) = (
    "crates/sim/src/good.rs",
    "//! Mentions HashMap and Instant::now in docs only.\n\
     const DOC: &str = \"thread_rng\";\n\
     // pf-lint: allow(D1): key-addressed lookups only; iteration never observed\n\
     use std::collections::HashMap;\n\
     fn f() { let rng = StdRng::seed_from_u64(42); }\n\
     #[cfg(test)]\n\
     mod tests {\n\
         use std::collections::HashSet;\n\
         fn g(mut v: Vec<u32>) { debug_assert!(v.pop().is_some()); }\n\
     }\n",
);

/// A minimal golden-suite stand-in for the X1 fixture: pins `RoundRobin`
/// but not `UnpinnedPolicy`.
const X1_GOLDEN_FIXTURE: &str = "fn f() { let p = RouterPolicy::RoundRobin; let _ = p; }\n";

/// Runs the self-test. Returns the per-check report lines; `Err` if any
/// check failed.
pub fn run() -> Result<Vec<String>, Vec<String>> {
    let mut report = Vec::new();
    let mut failures = Vec::new();

    for fixture in BAD_FIXTURES {
        let fired = match fixture.rule {
            "B1" => {
                // B1 lives in the baseline layer: an entry with a TODO
                // justification must surface as a finding.
                let entries = crate::baseline::parse("D1\tcrates/sim/src/x.rs\tline\tTODO\n")
                    .expect("well-formed");
                let result = crate::baseline::apply(Vec::new(), &entries, "lint-baseline.tsv");
                result.remaining.iter().any(|f| f.rule == "B1")
            }
            "X1" => {
                let files = vec![
                    SourceFile::new(fixture.path, fixture.src),
                    SourceFile::new(X1_GOLDEN_FILE, X1_GOLDEN_FIXTURE),
                ];
                let outcome = run_rules(&files);
                outcome.findings.iter().any(|f| f.rule == "X1")
                    && !outcome
                        .findings
                        .iter()
                        .any(|f| f.rule == "X1" && f.message.contains("RoundRobin"))
            }
            rule => {
                let files = vec![SourceFile::new(fixture.path, fixture.src)];
                run_rules(&files).findings.iter().any(|f| f.rule == rule)
            }
        };
        if fired {
            report.push(format!("rule {}: fires on known-bad fixture", fixture.rule));
        } else {
            failures.push(format!(
                "rule {} did NOT fire on its known-bad fixture",
                fixture.rule
            ));
        }
    }

    // Catalog coverage: every rule in RULES has a known-bad fixture.
    for rule in RULES {
        if !BAD_FIXTURES.iter().any(|f| f.rule == rule.id) {
            failures.push(format!("rule {} has no known-bad fixture", rule.id));
        }
    }

    // Known-good fixture: zero findings, and the justified suppression is
    // counted as used.
    let good = SourceFile::new(GOOD_FIXTURE.0, GOOD_FIXTURE.1);
    let outcome = run_rules(&[good]);
    if outcome.findings.is_empty() {
        report.push("known-good fixture: zero findings".to_string());
    } else {
        for f in &outcome.findings {
            failures.push(format!(
                "known-good fixture raised {} at line {}: {}",
                f.rule, f.line, f.message
            ));
        }
    }
    if outcome.suppressed == 1 && outcome.unused_suppressions.is_empty() {
        report.push("known-good fixture: suppression exercised and counted used".to_string());
    } else {
        failures.push(format!(
            "known-good fixture suppression accounting wrong: suppressed={}, unused={}",
            outcome.suppressed,
            outcome.unused_suppressions.len()
        ));
    }

    if failures.is_empty() {
        Ok(report)
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn self_test_passes() {
        match super::run() {
            Ok(report) => assert!(!report.is_empty()),
            Err(failures) => panic!("self-test failed:\n{}", failures.join("\n")),
        }
    }
}
