//! Property tests for the pf-lint lexer.
//!
//! The lexer is the linter's foundation: if spans don't partition the
//! input, or comments/strings leak into the identifier stream, every
//! rule built on top is wrong. Three properties pin the contract:
//!
//! 1. **Partition** — on arbitrary fragment soup (including malformed
//!    constructs), token spans tile the input exactly: no gaps, no
//!    overlaps, no empty tokens.
//! 2. **No leak** — hazard words placed inside comments, strings, raw
//!    strings, and char literals never surface as identifier tokens.
//! 3. **CRLF/LF equivalence** — the same logical source lexes to the
//!    same token kinds, texts (modulo `\r`), and line numbers under both
//!    line endings.

use pf_lint::lexer::{lex, TokenKind};
use proptest::collection::vec;
use proptest::prelude::*;

/// Fragment palette for the partition property — deliberately includes
/// malformed constructs (unterminated strings/comments, stray quotes,
/// lone `r#`) because the lexer must be total.
const SOUP: &[&str] = &[
    "fn",
    "ident_one",
    "r#type",
    "HashMap",
    "'a",
    "'x'",
    "'\\n'",
    "\"string with spaces\"",
    "\"esc \\\" aped\"",
    "r\"raw\"",
    "r#\"raw # hash\"#",
    "r##\"nested \"# inside\"##",
    "b\"bytes\"",
    "br#\"raw bytes\"#",
    "// line comment",
    "/* block */",
    "/* nested /* deeper */ still */",
    "/* unterminated",
    "\"unterminated",
    "r#\"unterminated raw",
    "0",
    "42",
    "3.14",
    "1e10",
    "1.5e-3",
    "0xFF",
    "0b1010",
    "1_000_000",
    "..",
    "..=",
    "::",
    "->",
    "=>",
    "<<=",
    ">>=",
    "==",
    "!=",
    "&&",
    "||",
    "{",
    "}",
    "(",
    ")",
    "[",
    "]",
    ";",
    ",",
    "#",
    "!",
    "?",
    "@",
    "$",
    "\\",
    "'",
    "\"",
    "r#",
    "λ_unicode",
    "🦀",
    " ",
    "\t",
    "\n",
    "\r\n",
];

/// Fragments with the single significant token kind each must lex to.
/// Every one embeds a hazard word that must NOT surface as an `Ident`.
const CLASSIFIED: &[(&str, TokenKind)] = &[
    ("// HashMap in a line comment", TokenKind::LineComment),
    ("/* Instant::now() in a block */", TokenKind::BlockComment),
    (
        "/* nested /* thread_rng */ layer */",
        TokenKind::BlockComment,
    ),
    ("\"thread_rng in a string\"", TokenKind::Str),
    ("\"escaped \\\" HashSet quote\"", TokenKind::Str),
    ("r\"rand::random raw\"", TokenKind::RawStr),
    ("r#\"SystemTime \" with quote\"#", TokenKind::RawStr),
    ("br#\"HashMap raw bytes\"#", TokenKind::RawStr),
    ("safe_ident", TokenKind::Ident),
    ("12345", TokenKind::Number),
];

const HAZARDS: &[&str] = &[
    "HashMap",
    "HashSet",
    "Instant",
    "now",
    "thread_rng",
    "rand",
    "random",
    "SystemTime",
];

/// Fragments safe for the CRLF property: well-formed, no embedded
/// newlines, no constructs that would swallow a following line break.
const LINE_SAFE: &[&str] = &[
    "fn f() {}",
    "let x = 42;",
    "// trailing comment",
    "/* block */ ident",
    "let s = \"str\";",
    "let r = r#\"raw\"#;",
    "match x { _ => () }",
    "a..=b; c::d(); e->0",
    "#[derive(Debug)]",
    "",
    "    indented();",
];

fn soup_strategy() -> impl Strategy<Value = String> {
    vec(0usize..SOUP.len(), 1..60)
        .prop_map(|idxs| idxs.into_iter().map(|i| SOUP[i]).collect::<String>())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn spans_partition_arbitrary_soup(src in soup_strategy()) {
        let tokens = lex(&src);
        let mut pos = 0usize;
        for t in &tokens {
            prop_assert_eq!(t.start, pos, "gap or overlap before token at byte {}", t.start);
            prop_assert!(t.start < t.end, "empty token at byte {}", t.start);
            pos = t.end;
        }
        prop_assert_eq!(pos, src.len(), "tokens do not cover the whole input");
        // Line numbers are monotone and start at 1.
        let mut line = 1u32;
        for t in &tokens {
            prop_assert!(t.line >= line, "line numbers went backwards");
            line = t.line;
        }
    }

    #[test]
    fn comments_and_strings_never_leak(idxs in vec(0usize..CLASSIFIED.len(), 1..40)) {
        // Join with newlines so line comments terminate where intended.
        let src = idxs
            .iter()
            .map(|&i| CLASSIFIED[i].0)
            .collect::<Vec<_>>()
            .join("\n");
        let tokens = lex(&src);
        // No hazard word ever surfaces as an identifier…
        for t in &tokens {
            if t.kind == TokenKind::Ident {
                let text = &src[t.start..t.end];
                prop_assert!(
                    !HAZARDS.contains(&text),
                    "hazard `{}` leaked out of a comment/string as an Ident",
                    text
                );
            }
        }
        // …and each fragment lexes to exactly its expected token kind.
        let kinds: Vec<TokenKind> = tokens
            .iter()
            .filter(|t| t.kind != TokenKind::Whitespace)
            .map(|t| t.kind)
            .collect();
        let expected: Vec<TokenKind> = idxs.iter().map(|&i| CLASSIFIED[i].1).collect();
        prop_assert_eq!(kinds, expected);
    }

    #[test]
    fn crlf_and_lf_lex_identically(idxs in vec(0usize..LINE_SAFE.len(), 1..30)) {
        let lines: Vec<&str> = idxs.iter().map(|&i| LINE_SAFE[i]).collect();
        let lf = lines.join("\n");
        let crlf = lines.join("\r\n");
        let toks_lf = lex(&lf);
        let toks_crlf = lex(&crlf);
        let project = |src: &str, toks: &[pf_lint::lexer::Token]| -> Vec<(TokenKind, String, u32)> {
            toks.iter()
                .map(|t| (t.kind, src[t.start..t.end].replace('\r', ""), t.line))
                .collect()
        };
        prop_assert_eq!(project(&lf, &toks_lf), project(&crlf, &toks_crlf));
    }
}

// ---------------------------------------------------------------------
// Deterministic edge-case tests (nested comments, raw-string edges).
// ---------------------------------------------------------------------

fn kinds_and_texts(src: &str) -> Vec<(TokenKind, &str)> {
    lex(src)
        .iter()
        .filter(|t| t.kind != TokenKind::Whitespace)
        .map(|t| (t.kind, &src[t.start..t.end]))
        .collect()
}

#[test]
fn nested_block_comment_is_one_token() {
    let src = "/* a /* b /* c */ b */ a */ after";
    assert_eq!(
        kinds_and_texts(src),
        vec![
            (TokenKind::BlockComment, "/* a /* b /* c */ b */ a */"),
            (TokenKind::Ident, "after"),
        ]
    );
}

#[test]
fn unterminated_nested_comment_consumes_to_eof() {
    let src = "/* open /* inner */ still open HashMap";
    assert_eq!(kinds_and_texts(src), vec![(TokenKind::BlockComment, src)]);
}

#[test]
fn raw_string_hash_edges() {
    assert_eq!(
        kinds_and_texts("r#\"\"#"),
        vec![(TokenKind::RawStr, "r#\"\"#")]
    );
    assert_eq!(
        kinds_and_texts("r##\"a\"# b\"##"),
        vec![(TokenKind::RawStr, "r##\"a\"# b\"##")]
    );
    // A raw string closed with too few hashes keeps going.
    assert_eq!(
        kinds_and_texts("r##\"x\"# y\"## z"),
        vec![
            (TokenKind::RawStr, "r##\"x\"# y\"##"),
            (TokenKind::Ident, "z")
        ]
    );
    // `r` followed by a non-string is a plain identifier.
    assert_eq!(
        kinds_and_texts("r + 1"),
        vec![
            (TokenKind::Ident, "r"),
            (TokenKind::Punct, "+"),
            (TokenKind::Number, "1"),
        ]
    );
    // Raw identifiers are idents, not raw strings.
    assert_eq!(
        kinds_and_texts("r#type"),
        vec![(TokenKind::Ident, "r#type")]
    );
}

#[test]
fn unterminated_raw_string_consumes_to_eof() {
    let src = "r#\"never closed\nthread_rng()";
    assert_eq!(kinds_and_texts(src), vec![(TokenKind::RawStr, src)]);
}

#[test]
fn byte_raw_strings() {
    assert_eq!(
        kinds_and_texts("br#\"bytes\"# b\"plain\""),
        vec![
            (TokenKind::RawStr, "br#\"bytes\"#"),
            (TokenKind::Str, "b\"plain\"")
        ]
    );
}
