//! Serving-framework presets for the paper's end-to-end comparison
//! (Figure 9, Table 2).
//!
//! Each preset reduces a real serving stack to the properties that drive
//! the goodput comparison: its *scheduler class*, its *memory manager*, its
//! *batching/prefill discipline* and a scalar *kernel-speed multiplier*
//! (relative to the LightLLM baseline, calibrated from the December-2023
//! static single-batch latencies the paper's comparison is based on):
//!
//! | Preset | Scheduler | Memory | Batching | Kernels |
//! |---|---|---|---|---|
//! | LightLLM | Past-Future | token pool | continuous | 1.00× |
//! | vLLM | aggressive (watermark) | paged blocks | continuous | 1.00× |
//! | TGI | conservative | paged blocks | continuous | 0.95× |
//! | DeepSpeed-MII | conservative | token pool | continuous + splitfuse | 1.00× |
//! | TensorRT-LLM | conservative | paged blocks | continuous | 1.15× |
//! | HF original (multimodal) | conservative | contiguous | static | 0.90× |
//!
//! # Example
//!
//! ```
//! use pf_frameworks::Framework;
//! use pf_sim::{GpuSpec, ModelSpec, Simulation};
//! use pf_workload::{datasets, ClosedLoopClients};
//!
//! let config = Framework::LightLlm
//!     .config(ModelSpec::llama2_7b(), GpuSpec::a100_80g(), 1)
//!     .seed(3)
//!     .build();
//! let report = Simulation::closed_loop(
//!     config,
//!     datasets::sharegpt(32, 3),
//!     ClosedLoopClients::new(8),
//! )
//! .run()?;
//! assert_eq!(report.completed, 32);
//! # Ok::<(), pf_sim::SimError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use pf_core::SchedulerConfig;
use pf_sim::{
    BatchingMode, GpuSpec, KvLayout, ModelSpec, PrefillMode, SimConfig, SimConfigBuilder,
};

/// The serving frameworks compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Framework {
    /// LightLLM with the Past-Future scheduler (the paper's system).
    LightLlm,
    /// vLLM: aggressive scheduler over PagedAttention.
    Vllm,
    /// HuggingFace Text-Generation-Inference: conservative scheduler.
    Tgi,
    /// DeepSpeed-MII (FastGen): conservative scheduler with the splitfuse
    /// chunked-prefill strategy.
    DeepSpeedMii,
    /// TensorRT-LLM with a conservative scheduler (the paper implemented
    /// the scheduler for this backend; fastest static kernels).
    TensorRtLlm,
    /// Original HuggingFace implementations of the multimodal models
    /// (static batching) — the Table 2 baseline.
    HfOriginal,
}

/// A fully resolved preset: scheduler, memory manager, batching and
/// relative kernel speed.
#[derive(Debug, Clone, PartialEq)]
pub struct FrameworkPreset {
    /// Display name used in reports.
    pub name: &'static str,
    /// Admission policy.
    pub scheduler: SchedulerConfig,
    /// KV-cache layout.
    pub kv_layout: KvLayout,
    /// Batching discipline.
    pub batching: BatchingMode,
    /// Prompt-processing discipline.
    pub prefill: PrefillMode,
    /// Kernel speed relative to the LightLLM baseline.
    pub kernel_speedup: f64,
}

impl Framework {
    /// All frameworks in the Figure 9 comparison (text serving).
    pub const FIGURE9: [Framework; 5] = [
        Framework::Tgi,
        Framework::Vllm,
        Framework::DeepSpeedMii,
        Framework::TensorRtLlm,
        Framework::LightLlm,
    ];

    /// The resolved preset.
    pub fn preset(self) -> FrameworkPreset {
        match self {
            Framework::LightLlm => FrameworkPreset {
                name: "LightLLM",
                scheduler: SchedulerConfig::past_future_reserved(0.03),
                kv_layout: KvLayout::TokenPool,
                batching: BatchingMode::Continuous,
                prefill: PrefillMode::WholePrompt,
                kernel_speedup: 1.0,
            },
            Framework::Vllm => FrameworkPreset {
                name: "vLLM",
                scheduler: SchedulerConfig::aggressive(0.99),
                kv_layout: KvLayout::Paged { block_size: 16 },
                batching: BatchingMode::Continuous,
                prefill: PrefillMode::WholePrompt,
                kernel_speedup: 1.0,
            },
            Framework::Tgi => FrameworkPreset {
                name: "TGI",
                scheduler: SchedulerConfig::conservative(),
                kv_layout: KvLayout::Paged { block_size: 16 },
                batching: BatchingMode::Continuous,
                prefill: PrefillMode::WholePrompt,
                kernel_speedup: 0.95,
            },
            Framework::DeepSpeedMii => FrameworkPreset {
                name: "DeepSpeed-MII",
                scheduler: SchedulerConfig::conservative(),
                kv_layout: KvLayout::TokenPool,
                batching: BatchingMode::Continuous,
                prefill: PrefillMode::Chunked { chunk_tokens: 512 },
                kernel_speedup: 1.0,
            },
            Framework::TensorRtLlm => FrameworkPreset {
                name: "TensorRT-LLM",
                scheduler: SchedulerConfig::conservative(),
                kv_layout: KvLayout::Paged { block_size: 64 },
                batching: BatchingMode::Continuous,
                prefill: PrefillMode::WholePrompt,
                kernel_speedup: 1.15,
            },
            Framework::HfOriginal => FrameworkPreset {
                name: "Original (HF)",
                scheduler: SchedulerConfig::conservative(),
                kv_layout: KvLayout::Contiguous,
                batching: BatchingMode::Static { max_batch: 16 },
                prefill: PrefillMode::WholePrompt,
                kernel_speedup: 0.9,
            },
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        self.preset().name
    }

    /// Builds a [`SimConfig`] builder pre-populated with this framework's
    /// preset for the given deployment. Call `.seed(..)`, `.sla(..)` etc.
    /// and `.build()` to finish.
    pub fn config(self, model: ModelSpec, gpu: GpuSpec, tensor_parallel: u32) -> SimConfigBuilder {
        let preset = self.preset();
        SimConfig::builder(model, gpu)
            .tensor_parallel(tensor_parallel)
            .scheduler(preset.scheduler)
            .kv_layout(preset.kv_layout)
            .batching(preset.batching)
            .prefill(preset.prefill)
            .kernel_speedup(preset.kernel_speedup)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_sim::Simulation;
    use pf_workload::{datasets, ClosedLoopClients};

    #[test]
    fn presets_are_distinct_and_named() {
        let names: std::collections::HashSet<&str> = [
            Framework::LightLlm,
            Framework::Vllm,
            Framework::Tgi,
            Framework::DeepSpeedMii,
            Framework::TensorRtLlm,
            Framework::HfOriginal,
        ]
        .iter()
        .map(|f| f.name())
        .collect();
        assert_eq!(names.len(), 6);
    }

    #[test]
    fn lightllm_uses_past_future_vllm_uses_aggressive() {
        assert!(matches!(
            Framework::LightLlm.preset().scheduler,
            SchedulerConfig::PastFuture { .. }
        ));
        assert!(matches!(
            Framework::Vllm.preset().scheduler,
            SchedulerConfig::Aggressive { .. }
        ));
        assert!(matches!(
            Framework::Tgi.preset().scheduler,
            SchedulerConfig::Conservative { .. }
        ));
    }

    #[test]
    fn figure9_lineup_matches_paper() {
        assert_eq!(Framework::FIGURE9.len(), 5);
        assert!(Framework::FIGURE9.contains(&Framework::LightLlm));
        assert!(!Framework::FIGURE9.contains(&Framework::HfOriginal));
    }

    #[test]
    fn every_figure9_preset_serves_a_small_workload() {
        for framework in Framework::FIGURE9 {
            let config = framework
                .config(ModelSpec::llama2_7b(), GpuSpec::a100_80g(), 1)
                .seed(1)
                .capacity_override(60_000)
                .record_series(false)
                .build();
            let report = Simulation::closed_loop(
                config,
                datasets::sharegpt(24, 1),
                ClosedLoopClients::new(6),
            )
            .run()
            .unwrap_or_else(|e| panic!("{} failed: {e}", framework.name()));
            assert_eq!(report.completed, 24, "{}", framework.name());
        }
    }

    #[test]
    fn hf_original_static_batching_works() {
        let config = Framework::HfOriginal
            .config(ModelSpec::llava_15_7b(), GpuSpec::a100_80g(), 1)
            .seed(2)
            .record_series(false)
            .build();
        let report = Simulation::offline(config, datasets::textvqa_llava(32, 2))
            .run()
            .unwrap();
        assert_eq!(report.completed, 32);
        assert_eq!(report.evictions, 0);
    }

    #[test]
    fn trt_kernels_faster_than_tgi() {
        assert!(
            Framework::TensorRtLlm.preset().kernel_speedup > Framework::Tgi.preset().kernel_speedup
        );
    }
}
