//! KV-cache memory managers for LLM serving simulation.
//!
//! Continuous batching lives or dies by KV-cache memory accounting (paper
//! Section 2.2). This crate implements the three manager designs the paper
//! discusses, behind one [`KvCacheManager`] trait:
//!
//! * [`TokenPool`] — token-granularity allocation, LightLLM's
//!   *TokenAttention* design. Zero internal fragmentation.
//! * [`PagedPool`] — fixed-size block allocation, vLLM's *PagedAttention*
//!   design. Internal fragmentation limited to the last block per request.
//! * [`ContiguousPool`] — contiguous max-length reservation,
//!   FasterTransformer/ORCA style. Massive reservation waste, shown here as
//!   the motivating baseline.
//!
//! The crate also provides [`PrefixCache`], a per-instance LRU over shared
//! prompt prefixes (system prompts, multi-turn conversations) used by
//! KV-aware routers to simulate prefix-cache hits, plus its block-granular
//! successor: chained [`block_hash`]es, the suffix-evicting
//! [`BlockPrefixCache`], and the event-driven [`KvIndexer`] /
//! [`ApproxKvIndexer`] pair that global KV-aware routers consult (see the
//! [`block`](crate::block_hash) module docs).
//!
//! All sizes are in **KV token slots**: one slot stores the key/value
//! vectors of one token across all layers. Requests are identified by opaque
//! `u64` keys chosen by the caller.
//!
//! # Example
//!
//! ```
//! use pf_kvcache::{KvCacheManager, TokenPool};
//!
//! let mut pool = TokenPool::new(1000);
//! pool.allocate(1, 300, 300)?; // prefill: 300 prompt tokens
//! pool.extend(1, 1)?;          // one decode step
//! assert_eq!(pool.used_tokens(), 301);
//! assert_eq!(pool.release(1), 301);
//! assert_eq!(pool.used_tokens(), 0);
//! # Ok::<(), pf_kvcache::KvCacheError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod block;
mod contiguous;
mod paged;
mod prefix;
mod token_pool;

pub use block::{block_hash, ApproxKvIndexer, BlockPrefixCache, KvEvent, KvIndexer, KV_ROOT_HASH};
pub use contiguous::ContiguousPool;
pub use paged::PagedPool;
pub use prefix::{PrefixCache, PrefixCacheStats};
pub use token_pool::TokenPool;

use std::error::Error;
use std::fmt;

/// Error returned when an allocation cannot be satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AllocError {
    /// Tokens requested by the failed call.
    pub requested: u64,
    /// Physical tokens that were available at the time.
    pub available: u64,
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "kv-cache allocation of {} tokens failed ({} available)",
            self.requested, self.available
        )
    }
}

impl Error for AllocError {}

/// Typed error of KV-cache manager operations.
///
/// Distinguishes ordinary memory exhaustion (the engine's admission and
/// eviction machinery handles it) from *protocol misuse* — operating on a
/// request id the manager does not know, which indicates a routing or
/// bookkeeping bug upstream. Misuse panics in debug builds (via
/// `debug_assert!`) and surfaces as a located error in release builds
/// instead of poisoning the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvCacheError {
    /// The operation could not be satisfied for lack of free slots.
    Alloc(AllocError),
    /// The operation referenced a request id the manager does not track —
    /// a routing/bookkeeping bug, not a capacity condition.
    UnknownRequest {
        /// The unknown request id.
        req: u64,
    },
}

impl KvCacheError {
    /// The allocation failure, when this is a capacity error.
    pub fn alloc(&self) -> Option<AllocError> {
        match self {
            KvCacheError::Alloc(e) => Some(*e),
            KvCacheError::UnknownRequest { .. } => None,
        }
    }
}

impl fmt::Display for KvCacheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KvCacheError::Alloc(e) => e.fmt(f),
            KvCacheError::UnknownRequest { req } => {
                write!(f, "kv-cache operation on unknown request {req}")
            }
        }
    }
}

impl Error for KvCacheError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            KvCacheError::Alloc(e) => Some(e),
            KvCacheError::UnknownRequest { .. } => None,
        }
    }
}

impl From<AllocError> for KvCacheError {
    fn from(e: AllocError) -> Self {
        KvCacheError::Alloc(e)
    }
}

/// Common interface of all KV-cache managers.
///
/// Implementations distinguish *logical* tokens (tokens whose KV entries are
/// actually stored) from *physical* tokens (slots consumed, including any
/// fragmentation or reservation overhead). For [`TokenPool`] the two are
/// equal; for [`PagedPool`] physical ≥ logical because of partially filled
/// blocks; for [`ContiguousPool`] physical is the full reservation.
pub trait KvCacheManager: fmt::Debug {
    /// Total capacity in physical token slots.
    fn capacity_tokens(&self) -> u64;

    /// Physical token slots currently consumed.
    fn used_tokens(&self) -> u64;

    /// Logical tokens currently stored.
    fn logical_tokens(&self) -> u64;

    /// Physical token slots still free.
    fn available_tokens(&self) -> u64 {
        self.capacity_tokens() - self.used_tokens()
    }

    /// Whether a *new* request with a `tokens`-token prompt (and
    /// `reserve_total` maximum total length, honoured only by
    /// reservation-based managers) could be admitted right now.
    fn can_admit(&self, tokens: u64, reserve_total: u64) -> bool;

    /// Allocates the initial (prefill) footprint of request `req`.
    ///
    /// `tokens` is the prompt length; `reserve_total` is the maximum total
    /// length the request may reach (prompt + max_new_tokens), used only by
    /// reservation-based managers.
    ///
    /// # Errors
    ///
    /// Returns [`AllocError`] if the manager cannot satisfy the allocation;
    /// the manager state is unchanged on error.
    ///
    /// # Panics
    ///
    /// Panics if `req` is already allocated.
    fn allocate(&mut self, req: u64, tokens: u64, reserve_total: u64) -> Result<(), AllocError>;

    /// Grows request `req` by `tokens` logical tokens (decode step).
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::Alloc`] on out-of-memory and
    /// [`KvCacheError::UnknownRequest`] if `req` is not tracked (a
    /// `debug_assert!` panic in debug builds); the manager state is
    /// unchanged on error.
    fn extend(&mut self, req: u64, tokens: u64) -> Result<(), KvCacheError>;

    /// Releases everything held by request `req`, returning the number of
    /// physical slots freed (0 if the request is unknown).
    fn release(&mut self, req: u64) -> u64;

    /// Physical token slots *missing* to extend every listed request by one
    /// logical token in the same step (0 means the combined extension is
    /// guaranteed to succeed). Used by the engine to decide evictions
    /// before a decode step.
    ///
    /// # Errors
    ///
    /// Returns [`KvCacheError::UnknownRequest`] if any listed request is
    /// not tracked (a `debug_assert!` panic in debug builds).
    fn extension_shortfall(&self, requests: &[u64]) -> Result<u64, KvCacheError>;

    /// Highest physical usage ever observed.
    fn peak_used_tokens(&self) -> u64;

    /// Number of live requests.
    fn n_requests(&self) -> usize;

    /// Fraction of capacity physically used, in `[0, 1]`.
    fn utilization(&self) -> f64 {
        if self.capacity_tokens() == 0 {
            0.0
        } else {
            self.used_tokens() as f64 / self.capacity_tokens() as f64
        }
    }

    /// Physical-minus-logical overhead (fragmentation / reservation waste).
    fn overhead_tokens(&self) -> u64 {
        self.used_tokens() - self.logical_tokens()
    }
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn check_basic(manager: &mut dyn KvCacheManager) {
        assert_eq!(manager.used_tokens(), 0);
        manager.allocate(1, 10, 20).unwrap();
        assert!(manager.used_tokens() >= 10);
        assert_eq!(manager.logical_tokens(), 10);
        manager.extend(1, 5).unwrap();
        assert_eq!(manager.logical_tokens(), 15);
        assert_eq!(manager.n_requests(), 1);
        let freed = manager.release(1);
        assert!(freed >= 15);
        assert_eq!(manager.used_tokens(), 0);
        assert_eq!(manager.n_requests(), 0);
    }

    #[test]
    fn all_managers_satisfy_basic_contract() {
        check_basic(&mut TokenPool::new(100));
        check_basic(&mut PagedPool::new(100, 4));
        check_basic(&mut ContiguousPool::new(100));
    }

    #[test]
    fn utilization_bounds() {
        let mut pool = TokenPool::new(10);
        assert_eq!(pool.utilization(), 0.0);
        pool.allocate(1, 10, 10).unwrap();
        assert_eq!(pool.utilization(), 1.0);
    }

    #[test]
    fn alloc_error_displays() {
        let e = AllocError {
            requested: 10,
            available: 3,
        };
        assert_eq!(
            e.to_string(),
            "kv-cache allocation of 10 tokens failed (3 available)"
        );
    }

    #[test]
    fn kv_cache_error_wraps_and_displays() {
        let alloc = AllocError {
            requested: 10,
            available: 3,
        };
        let wrapped = KvCacheError::from(alloc);
        assert_eq!(wrapped.alloc(), Some(alloc));
        assert!(wrapped.to_string().contains("10 tokens"));
        let unknown = KvCacheError::UnknownRequest { req: 9 };
        assert_eq!(unknown.alloc(), None);
        assert_eq!(
            unknown.to_string(),
            "kv-cache operation on unknown request 9"
        );
    }
}
