//! Token-granularity KV-cache pool (LightLLM TokenAttention).

use std::collections::HashMap;

use crate::{AllocError, KvCacheError, KvCacheManager};

/// Token-granularity allocator: every logical token occupies exactly one
/// physical slot, so there is no internal fragmentation and no reservation.
///
/// This models LightLLM's TokenAttention memory manager, where the attention
/// kernel follows a per-request token-index table into one global KV pool.
///
/// # Example
///
/// ```
/// use pf_kvcache::{KvCacheManager, TokenPool};
///
/// let mut pool = TokenPool::new(100);
/// pool.allocate(7, 40, 40)?;
/// assert_eq!(pool.available_tokens(), 60);
/// assert!(pool.extend(7, 60).is_ok());
/// assert!(pool.extend(7, 1).is_err()); // full
/// # Ok::<(), pf_kvcache::KvCacheError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TokenPool {
    capacity: u64,
    used: u64,
    peak: u64,
    requests: HashMap<u64, u64>,
}

impl TokenPool {
    /// Creates a pool with `capacity` token slots.
    pub fn new(capacity: u64) -> Self {
        TokenPool {
            capacity,
            used: 0,
            peak: 0,
            requests: HashMap::new(),
        }
    }

    /// Tokens held by request `req`, if known.
    pub fn tokens_of(&self, req: u64) -> Option<u64> {
        self.requests.get(&req).copied()
    }

    fn bump_peak(&mut self) {
        self.peak = self.peak.max(self.used);
    }
}

impl KvCacheManager for TokenPool {
    fn capacity_tokens(&self) -> u64 {
        self.capacity
    }

    fn used_tokens(&self) -> u64 {
        self.used
    }

    fn logical_tokens(&self) -> u64 {
        self.used
    }

    fn can_admit(&self, tokens: u64, _reserve_total: u64) -> bool {
        tokens <= self.available_tokens()
    }

    fn allocate(&mut self, req: u64, tokens: u64, _reserve_total: u64) -> Result<(), AllocError> {
        assert!(
            !self.requests.contains_key(&req),
            "request {req} already allocated"
        );
        if tokens > self.available_tokens() {
            return Err(AllocError {
                requested: tokens,
                available: self.available_tokens(),
            });
        }
        self.requests.insert(req, tokens);
        self.used += tokens;
        self.bump_peak();
        Ok(())
    }

    fn extend(&mut self, req: u64, tokens: u64) -> Result<(), KvCacheError> {
        let available = self.available_tokens();
        let Some(held) = self.requests.get_mut(&req) else {
            debug_assert!(false, "extend of unknown request {req}");
            return Err(KvCacheError::UnknownRequest { req });
        };
        if tokens > available {
            return Err(AllocError {
                requested: tokens,
                available,
            }
            .into());
        }
        *held += tokens;
        self.used += tokens;
        self.bump_peak();
        Ok(())
    }

    fn release(&mut self, req: u64) -> u64 {
        let freed = self.requests.remove(&req).unwrap_or(0);
        self.used -= freed;
        freed
    }

    fn extension_shortfall(&self, requests: &[u64]) -> Result<u64, KvCacheError> {
        for &req in requests {
            if !self.requests.contains_key(&req) {
                debug_assert!(false, "unknown request {req}");
                return Err(KvCacheError::UnknownRequest { req });
            }
        }
        Ok((requests.len() as u64).saturating_sub(self.available_tokens()))
    }

    fn peak_used_tokens(&self) -> u64 {
        self.peak
    }

    fn n_requests(&self) -> usize {
        self.requests.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_extend_release_roundtrip() {
        let mut p = TokenPool::new(50);
        p.allocate(1, 20, 20).unwrap();
        p.allocate(2, 10, 10).unwrap();
        assert_eq!(p.used_tokens(), 30);
        assert_eq!(p.tokens_of(1), Some(20));
        p.extend(1, 5).unwrap();
        assert_eq!(p.tokens_of(1), Some(25));
        assert_eq!(p.release(1), 25);
        assert_eq!(p.release(1), 0); // double release is a no-op
        assert_eq!(p.used_tokens(), 10);
        assert_eq!(p.n_requests(), 1);
    }

    #[test]
    fn rejects_over_capacity() {
        let mut p = TokenPool::new(10);
        let err = p.allocate(1, 11, 11).unwrap_err();
        assert_eq!(
            err,
            AllocError {
                requested: 11,
                available: 10
            }
        );
        assert_eq!(p.used_tokens(), 0); // unchanged on failure
        assert_eq!(p.n_requests(), 0);
    }

    #[test]
    fn failed_extend_leaves_state() {
        let mut p = TokenPool::new(10);
        p.allocate(1, 8, 8).unwrap();
        assert!(p.extend(1, 3).is_err());
        assert_eq!(p.tokens_of(1), Some(8));
        assert_eq!(p.used_tokens(), 8);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let mut p = TokenPool::new(100);
        p.allocate(1, 60, 60).unwrap();
        p.allocate(2, 30, 30).unwrap();
        p.release(1);
        p.allocate(3, 10, 10).unwrap();
        assert_eq!(p.peak_used_tokens(), 90);
        assert_eq!(p.used_tokens(), 40);
    }

    #[test]
    fn no_overhead() {
        let mut p = TokenPool::new(100);
        p.allocate(1, 33, 99).unwrap();
        assert_eq!(p.overhead_tokens(), 0);
        assert_eq!(p.logical_tokens(), p.used_tokens());
    }

    #[test]
    fn can_admit_matches_allocate() {
        let mut p = TokenPool::new(10);
        p.allocate(1, 4, 4).unwrap();
        assert!(p.can_admit(6, 6));
        assert!(!p.can_admit(7, 7));
    }

    #[test]
    #[should_panic(expected = "already allocated")]
    fn duplicate_allocate_panics() {
        let mut p = TokenPool::new(10);
        p.allocate(1, 1, 1).unwrap();
        let _ = p.allocate(1, 1, 1);
    }

    #[test]
    #[should_panic(expected = "unknown request")]
    #[cfg(debug_assertions)]
    fn extend_unknown_panics_in_debug() {
        let mut p = TokenPool::new(10);
        let _ = p.extend(9, 1);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn extend_unknown_errors_in_release() {
        let mut p = TokenPool::new(10);
        assert_eq!(p.extend(9, 1), Err(KvCacheError::UnknownRequest { req: 9 }));
        assert_eq!(
            p.extension_shortfall(&[9]),
            Err(KvCacheError::UnknownRequest { req: 9 })
        );
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// Random alloc/extend/release workload preserving accounting
        /// invariants.
        #[derive(Debug, Clone)]
        enum Op {
            Alloc(u64, u64),
            Extend(u64, u64),
            Release(u64),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                (0u64..8, 1u64..200).prop_map(|(r, t)| Op::Alloc(r, t)),
                (0u64..8, 1u64..50).prop_map(|(r, t)| Op::Extend(r, t)),
                (0u64..8).prop_map(Op::Release),
            ]
        }

        proptest! {
            #[test]
            fn accounting_invariants(ops in proptest::collection::vec(op_strategy(), 0..200)) {
                let mut pool = TokenPool::new(500);
                let mut shadow: std::collections::HashMap<u64, u64> = Default::default();
                for op in ops {
                    match op {
                        Op::Alloc(r, t) => {
                            if shadow.contains_key(&r) {
                                continue;
                            }
                            if pool.allocate(r, t, t).is_ok() {
                                shadow.insert(r, t);
                            }
                        }
                        Op::Extend(r, t) => {
                            if shadow.contains_key(&r) && pool.extend(r, t).is_ok() {
                                *shadow.get_mut(&r).unwrap() += t;
                            }
                        }
                        Op::Release(r) => {
                            let freed = pool.release(r);
                            prop_assert_eq!(freed, shadow.remove(&r).unwrap_or(0));
                        }
                    }
                    let expected: u64 = shadow.values().sum();
                    prop_assert_eq!(pool.used_tokens(), expected);
                    prop_assert!(pool.used_tokens() <= pool.capacity_tokens());
                    prop_assert!(pool.peak_used_tokens() >= pool.used_tokens());
                    prop_assert_eq!(pool.n_requests(), shadow.len());
                }
            }
        }
    }
}
