//! Per-instance prefix cache for KV-aware routing.
//!
//! Production routers (NVIDIA Dynamo's KV-aware router, SGLang's
//! RadixAttention) exploit *shared-prefix locality*: a multi-turn session's
//! next request repeats the whole conversation so far, and a system prompt
//! repeats across thousands of requests. An instance that still holds the
//! prefix's KV entries can skip recomputing them, shrinking the prefill to
//! the unseen suffix.
//!
//! [`PrefixCache`] models that instance-local state as an LRU map from
//! opaque prefix ids to the number of prefix tokens cached, with
//! token-budget eviction. The budget is carved out of the same physical KV
//! pool that serves request KV — the simulation engine charges the cache's
//! occupancy against the pool and shrinks the cache first under memory
//! pressure (see `pf-sim`).
//!
//! # Example
//!
//! ```
//! use pf_kvcache::PrefixCache;
//!
//! let mut cache = PrefixCache::new(1000);
//! cache.insert(7, 300); // session 7's conversation: 300 tokens
//! assert_eq!(cache.lookup(7, 250), 250); // next turn repeats 250 of them
//! assert_eq!(cache.lookup(8, 100), 0); // unknown session: full prefill
//! assert_eq!(cache.stats().hits, 1);
//! assert_eq!(cache.stats().lookups, 2);
//! ```

use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy)]
struct PrefixEntry {
    tokens: u64,
    last_used: u64,
}

/// Aggregate statistics of one [`PrefixCache`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PrefixCacheStats {
    /// Lookups performed (requests that declared a prefix).
    pub lookups: u64,
    /// Lookups that found a non-empty cached overlap.
    pub hits: u64,
    /// Prefix tokens served from cache across all hits (prefill work
    /// saved).
    pub hit_tokens: u64,
    /// Entries inserted or grown.
    pub insertions: u64,
    /// Entries evicted (budget pressure or external reclamation).
    pub evictions: u64,
    /// Tokens freed by evictions.
    pub evicted_tokens: u64,
}

impl PrefixCacheStats {
    /// Hits over lookups (0.0 when no lookup happened).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Merges another instance's statistics into this one (fleet-level
    /// reporting).
    pub fn merge(&mut self, other: &PrefixCacheStats) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.hit_tokens += other.hit_tokens;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.evicted_tokens += other.evicted_tokens;
    }
}

/// LRU cache over prefix ids with token-budget eviction.
///
/// Each entry records how many tokens of one prefix (a session's
/// conversation, a shared system prompt) are resident on the owning
/// instance. Occupancy never exceeds the budget: inserting evicts the
/// least-recently-used entries until the new entry fits; entries larger
/// than the whole budget are not cached at all.
///
/// All operations are deterministic: recency is a logical clock bumped on
/// every insert and hit, so the LRU victim is always unique.
#[derive(Debug, Clone)]
pub struct PrefixCache {
    budget_tokens: u64,
    used_tokens: u64,
    clock: u64,
    /// Cached prefixes by id. A `BTreeMap` so the eviction victim scan
    /// iterates in a fixed order — victim choice feeds eviction counters
    /// that replayed reports must reproduce bit-identically.
    entries: BTreeMap<u64, PrefixEntry>,
    stats: PrefixCacheStats,
}

impl PrefixCache {
    /// Creates a cache bounded to `budget_tokens` of KV.
    pub fn new(budget_tokens: u64) -> Self {
        PrefixCache {
            budget_tokens,
            used_tokens: 0,
            clock: 0,
            entries: BTreeMap::new(),
            stats: PrefixCacheStats::default(),
        }
    }

    /// The configured token budget.
    pub fn budget_tokens(&self) -> u64 {
        self.budget_tokens
    }

    /// Tokens currently cached across all entries.
    pub fn used_tokens(&self) -> u64 {
        self.used_tokens
    }

    /// Number of cached prefixes.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Statistics so far.
    pub fn stats(&self) -> PrefixCacheStats {
        self.stats
    }

    /// Cached token count of `prefix_id` without touching recency or
    /// statistics — the router's probe (a probe is not a use: only the
    /// instance that actually serves the request refreshes the entry).
    pub fn peek(&self, prefix_id: u64) -> Option<u64> {
        self.entries.get(&prefix_id).map(|e| e.tokens)
    }

    /// Looks up `prefix_id` for a request whose first `prefix_len` prompt
    /// tokens repeat the prefix. Returns the cached overlap
    /// `min(cached, prefix_len)` (0 on a miss), counting the lookup and —
    /// on a non-empty overlap — the hit, and refreshing the entry's
    /// recency.
    pub fn lookup(&mut self, prefix_id: u64, prefix_len: u64) -> u64 {
        self.stats.lookups += 1;
        let Some(entry) = self.entries.get_mut(&prefix_id) else {
            return 0;
        };
        let overlap = entry.tokens.min(prefix_len);
        if overlap == 0 {
            return 0;
        }
        self.clock += 1;
        entry.last_used = self.clock;
        self.stats.hits += 1;
        self.stats.hit_tokens += overlap;
        overlap
    }

    /// Caches (or grows) `prefix_id` at `tokens` tokens, evicting
    /// least-recently-used entries until the cache fits its budget. An
    /// existing entry never shrinks (`max(old, new)` wins — conversations
    /// only grow) and is never evicted by its own insert. Prefixes larger
    /// than the whole budget are not cached.
    pub fn insert(&mut self, prefix_id: u64, tokens: u64) {
        if tokens == 0 || tokens > self.budget_tokens {
            return;
        }
        self.clock += 1;
        let clock = self.clock;
        match self.entries.get_mut(&prefix_id) {
            Some(entry) => {
                entry.last_used = clock;
                if tokens > entry.tokens {
                    self.used_tokens += tokens - entry.tokens;
                    entry.tokens = tokens;
                    self.stats.insertions += 1;
                }
            }
            None => {
                self.entries.insert(
                    prefix_id,
                    PrefixEntry {
                        tokens,
                        last_used: clock,
                    },
                );
                self.used_tokens += tokens;
                self.stats.insertions += 1;
            }
        }
        self.evict_down_to(self.budget_tokens);
    }

    /// Evicts least-recently-used entries until occupancy is at most
    /// `target_tokens`. Returns the tokens freed. The engine calls this
    /// under request-KV pressure (the cache shares the physical pool), with
    /// `target_tokens` below the budget.
    pub fn evict_down_to(&mut self, target_tokens: u64) -> u64 {
        let mut freed = 0;
        while self.used_tokens > target_tokens {
            let victim = self
                .entries
                .iter()
                .min_by_key(|(id, e)| (e.last_used, **id))
                .map(|(id, _)| *id)
                .expect("non-zero occupancy implies entries");
            let entry = self.entries.remove(&victim).expect("victim exists");
            self.used_tokens -= entry.tokens;
            freed += entry.tokens;
            self.stats.evictions += 1;
            self.stats.evicted_tokens += entry.tokens;
        }
        freed
    }

    /// Drops every entry, returning the tokens freed.
    pub fn clear(&mut self) -> u64 {
        self.evict_down_to(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_caps_at_prefix_len_and_cached_len() {
        let mut c = PrefixCache::new(1000);
        c.insert(1, 300);
        assert_eq!(c.lookup(1, 200), 200); // request repeats less than cached
        assert_eq!(c.lookup(1, 400), 300); // request extends past the cache
        assert_eq!(c.lookup(2, 100), 0); // miss
        assert_eq!(c.stats().hits, 2);
        assert_eq!(c.stats().lookups, 3);
        assert_eq!(c.stats().hit_tokens, 500);
    }

    #[test]
    fn entries_grow_but_never_shrink() {
        let mut c = PrefixCache::new(1000);
        c.insert(1, 100);
        c.insert(1, 250);
        assert_eq!(c.peek(1), Some(250));
        assert_eq!(c.used_tokens(), 250);
        c.insert(1, 50); // stale shorter write: ignored
        assert_eq!(c.peek(1), Some(250));
        assert_eq!(c.used_tokens(), 250);
    }

    #[test]
    fn budget_evicts_lru_first() {
        let mut c = PrefixCache::new(300);
        c.insert(1, 100);
        c.insert(2, 100);
        c.insert(3, 100);
        assert_eq!(c.lookup(1, 100), 100); // refresh 1: now 2 is LRU
        c.insert(4, 100);
        assert_eq!(c.peek(2), None, "LRU entry evicted");
        assert_eq!(c.peek(1), Some(100));
        assert_eq!(c.peek(4), Some(100));
        assert_eq!(c.used_tokens(), 300);
        assert_eq!(c.stats().evictions, 1);
        assert_eq!(c.stats().evicted_tokens, 100);
    }

    #[test]
    fn oversized_prefix_not_cached() {
        let mut c = PrefixCache::new(100);
        c.insert(1, 101);
        assert!(c.is_empty());
        assert_eq!(c.used_tokens(), 0);
        c.insert(2, 100);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn external_eviction_frees_tokens() {
        let mut c = PrefixCache::new(1000);
        c.insert(1, 400);
        c.insert(2, 300);
        let freed = c.evict_down_to(350);
        assert_eq!(freed, 400, "LRU entry 1 evicted");
        assert_eq!(c.used_tokens(), 300);
        assert_eq!(c.clear(), 300);
        assert!(c.is_empty());
    }

    #[test]
    fn peek_does_not_touch_recency_or_stats() {
        let mut c = PrefixCache::new(200);
        c.insert(1, 100);
        c.insert(2, 100);
        let _ = c.peek(1); // would save 1 if it refreshed recency
        c.insert(3, 100);
        assert_eq!(c.peek(1), None, "peek must not refresh recency");
        assert_eq!(c.stats().lookups, 0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        #[derive(Debug, Clone)]
        enum Op {
            Insert(u64, u64),
            Lookup(u64, u64),
            Evict(u64),
        }

        fn op_strategy() -> impl Strategy<Value = Op> {
            prop_oneof![
                (0u64..12, 1u64..400).prop_map(|(id, t)| Op::Insert(id, t)),
                (0u64..12, 1u64..400).prop_map(|(id, t)| Op::Lookup(id, t)),
                (0u64..600).prop_map(Op::Evict),
            ]
        }

        proptest! {
            /// Occupancy never exceeds the budget and always equals the sum
            /// of the live entries.
            #[test]
            fn occupancy_bounded_by_budget(
                budget in 1u64..600,
                ops in proptest::collection::vec(op_strategy(), 0..120),
            ) {
                let mut cache = PrefixCache::new(budget);
                let mut shadow: std::collections::HashMap<u64, u64> = Default::default();
                for op in ops {
                    match op {
                        Op::Insert(id, tokens) => {
                            cache.insert(id, tokens);
                            if tokens <= budget {
                                let held = shadow.entry(id).or_insert(0);
                                *held = (*held).max(tokens);
                            }
                        }
                        Op::Lookup(id, len) => {
                            let overlap = cache.lookup(id, len);
                            // A hit is only ever served from a live entry.
                            match cache.peek(id) {
                                Some(cached) => prop_assert_eq!(overlap, cached.min(len)),
                                None => prop_assert_eq!(overlap, 0),
                            }
                        }
                        Op::Evict(target) => {
                            cache.evict_down_to(target);
                            prop_assert!(cache.used_tokens() <= target);
                        }
                    }
                    prop_assert!(cache.used_tokens() <= budget);
                    // Shadow drift: evictions shrink the live set, but any
                    // live entry matches its shadow token count.
                    shadow.retain(|id, _| cache.peek(*id).is_some());
                    let live_sum: u64 = shadow.values().sum();
                    prop_assert_eq!(cache.used_tokens(), live_sum);
                    for (id, tokens) in &shadow {
                        prop_assert_eq!(cache.peek(*id), Some(*tokens));
                    }
                }
            }

            /// Filling the cache past its budget evicts in exact LRU order.
            #[test]
            fn eviction_follows_lru_order(
                n in 2usize..12,
                refresh in proptest::collection::vec(0usize..12, 0..8),
            ) {
                // n unit-sized entries fill the budget exactly.
                let mut cache = PrefixCache::new(n as u64);
                for id in 0..n {
                    cache.insert(id as u64, 1);
                }
                // Refreshing entries reorders recency deterministically.
                let mut order: Vec<u64> = (0..n as u64).collect();
                for r in refresh {
                    let id = (r % n) as u64;
                    prop_assert_eq!(cache.lookup(id, 1), 1);
                    let pos = order.iter().position(|&x| x == id).unwrap();
                    order.remove(pos);
                    order.push(id);
                }
                // Each oversubscribing insert evicts exactly the current LRU.
                for (step, victim) in order.clone().into_iter().enumerate() {
                    cache.insert(1000 + step as u64, 1);
                    prop_assert_eq!(cache.peek(victim), None,
                        "expected {} to be the LRU victim", victim);
                    for survivor in &order[step + 1..] {
                        prop_assert!(cache.peek(*survivor).is_some());
                    }
                }
            }

            /// A non-zero overlap implies the prefix was inserted earlier
            /// and has not been evicted since.
            #[test]
            fn hit_implies_inserted_and_not_evicted(
                ops in proptest::collection::vec(op_strategy(), 0..150),
            ) {
                let mut cache = PrefixCache::new(500);
                let mut inserted: std::collections::HashSet<u64> = Default::default();
                for op in ops {
                    match op {
                        Op::Insert(id, tokens) => {
                            cache.insert(id, tokens);
                            inserted.insert(id);
                        }
                        Op::Lookup(id, len) => {
                            if cache.lookup(id, len) > 0 {
                                prop_assert!(inserted.contains(&id),
                                    "hit on never-inserted prefix {}", id);
                                prop_assert!(cache.peek(id).is_some(),
                                    "hit on evicted prefix {}", id);
                            }
                        }
                        Op::Evict(target) => {
                            cache.evict_down_to(target);
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn hit_rate_and_merge() {
        let mut a = PrefixCacheStats {
            lookups: 8,
            hits: 2,
            ..Default::default()
        };
        assert!((a.hit_rate() - 0.25).abs() < 1e-12);
        let b = PrefixCacheStats {
            lookups: 2,
            hits: 2,
            hit_tokens: 50,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.lookups, 10);
        assert_eq!(a.hits, 4);
        assert_eq!(a.hit_tokens, 50);
        assert_eq!(PrefixCacheStats::default().hit_rate(), 0.0);
    }
}
