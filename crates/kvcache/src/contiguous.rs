//! Contiguous max-length reservation (FasterTransformer / ORCA style).

use std::collections::HashMap;

use crate::{AllocError, KvCacheError, KvCacheManager};

#[derive(Debug, Clone, Copy)]
struct ContiguousEntry {
    logical: u64,
    reserved: u64,
}

/// Reservation-based allocator: each request reserves its *maximum possible*
/// footprint (prompt + `max_new_tokens`) up front, in one contiguous region.
///
/// This models pre-PagedAttention serving systems. The gap between the
/// reservation and the tokens actually generated is pure waste — the paper's
/// motivation for smarter scheduling and memory management. `extend` within
/// the reservation always succeeds; exceeding the reservation is a caller
/// bug (a real system sizes the region for the configured maximum) and
/// reports [`KvCacheError::Alloc`] — panicking in debug builds.
///
/// # Example
///
/// ```
/// use pf_kvcache::{ContiguousPool, KvCacheManager};
///
/// let mut pool = ContiguousPool::new(4096);
/// // 100-token prompt, but up to 2048 new tokens: reserves 2148 slots.
/// pool.allocate(1, 100, 2148)?;
/// assert_eq!(pool.used_tokens(), 2148);
/// assert_eq!(pool.logical_tokens(), 100);
/// # Ok::<(), pf_kvcache::KvCacheError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ContiguousPool {
    capacity: u64,
    reserved: u64,
    logical: u64,
    peak: u64,
    requests: HashMap<u64, ContiguousEntry>,
}

impl ContiguousPool {
    /// Creates a pool with `capacity` token slots.
    pub fn new(capacity: u64) -> Self {
        ContiguousPool {
            capacity,
            reserved: 0,
            logical: 0,
            peak: 0,
            requests: HashMap::new(),
        }
    }

    /// Reservation held by request `req`, if known.
    pub fn reservation_of(&self, req: u64) -> Option<u64> {
        self.requests.get(&req).map(|e| e.reserved)
    }

    fn bump_peak(&mut self) {
        self.peak = self.peak.max(self.reserved);
    }
}

impl KvCacheManager for ContiguousPool {
    fn capacity_tokens(&self) -> u64 {
        self.capacity
    }

    fn used_tokens(&self) -> u64 {
        self.reserved
    }

    fn logical_tokens(&self) -> u64 {
        self.logical
    }

    fn can_admit(&self, tokens: u64, reserve_total: u64) -> bool {
        tokens.max(reserve_total) <= self.available_tokens()
    }

    fn allocate(&mut self, req: u64, tokens: u64, reserve_total: u64) -> Result<(), AllocError> {
        assert!(
            !self.requests.contains_key(&req),
            "request {req} already allocated"
        );
        let reserve = tokens.max(reserve_total);
        if reserve > self.available_tokens() {
            return Err(AllocError {
                requested: reserve,
                available: self.available_tokens(),
            });
        }
        self.requests.insert(
            req,
            ContiguousEntry {
                logical: tokens,
                reserved: reserve,
            },
        );
        self.reserved += reserve;
        self.logical += tokens;
        self.bump_peak();
        Ok(())
    }

    fn extend(&mut self, req: u64, tokens: u64) -> Result<(), KvCacheError> {
        let Some(entry) = self.requests.get_mut(&req) else {
            debug_assert!(false, "extend of unknown request {req}");
            return Err(KvCacheError::UnknownRequest { req });
        };
        if entry.logical + tokens > entry.reserved {
            debug_assert!(
                false,
                "request {req} grew past its reservation ({} + {tokens} > {})",
                entry.logical, entry.reserved
            );
            return Err(AllocError {
                requested: tokens,
                available: entry.reserved - entry.logical,
            }
            .into());
        }
        entry.logical += tokens;
        self.logical += tokens;
        Ok(())
    }

    fn release(&mut self, req: u64) -> u64 {
        match self.requests.remove(&req) {
            Some(entry) => {
                self.reserved -= entry.reserved;
                self.logical -= entry.logical;
                entry.reserved
            }
            None => 0,
        }
    }

    fn extension_shortfall(&self, requests: &[u64]) -> Result<u64, KvCacheError> {
        for &req in requests {
            if !self.requests.contains_key(&req) {
                debug_assert!(false, "unknown request {req}");
                return Err(KvCacheError::UnknownRequest { req });
            }
        }
        // Growth within the reservation is prepaid.
        Ok(0)
    }

    fn peak_used_tokens(&self) -> u64 {
        self.peak
    }

    fn n_requests(&self) -> usize {
        self.requests.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reserves_max_footprint() {
        let mut p = ContiguousPool::new(1000);
        p.allocate(1, 50, 500).unwrap();
        assert_eq!(p.used_tokens(), 500);
        assert_eq!(p.logical_tokens(), 50);
        assert_eq!(p.overhead_tokens(), 450);
        assert_eq!(p.reservation_of(1), Some(500));
    }

    #[test]
    fn extend_within_reservation_is_free() {
        let mut p = ContiguousPool::new(1000);
        p.allocate(1, 50, 500).unwrap();
        p.extend(1, 450).unwrap();
        assert_eq!(p.used_tokens(), 500);
        assert_eq!(p.overhead_tokens(), 0);
    }

    #[test]
    fn admission_checks_reservation_not_prompt() {
        let mut p = ContiguousPool::new(100);
        assert!(p.can_admit(10, 90));
        assert!(!p.can_admit(10, 101));
        assert!(p.allocate(1, 10, 101).is_err());
        assert_eq!(p.n_requests(), 0);
    }

    #[test]
    fn release_frees_full_reservation() {
        let mut p = ContiguousPool::new(100);
        p.allocate(1, 10, 80).unwrap();
        assert_eq!(p.release(1), 80);
        assert_eq!(p.used_tokens(), 0);
        assert_eq!(p.logical_tokens(), 0);
    }

    #[test]
    fn reserve_defaults_to_prompt_when_smaller() {
        let mut p = ContiguousPool::new(100);
        // Caller passed a reserve smaller than the prompt: prompt wins.
        p.allocate(1, 60, 10).unwrap();
        assert_eq!(p.used_tokens(), 60);
    }

    #[test]
    #[should_panic(expected = "grew past its reservation")]
    #[cfg(debug_assertions)]
    fn growing_past_reservation_panics_in_debug() {
        let mut p = ContiguousPool::new(100);
        p.allocate(1, 10, 20).unwrap();
        let _ = p.extend(1, 11);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn growing_past_reservation_errors_in_release() {
        let mut p = ContiguousPool::new(100);
        p.allocate(1, 10, 20).unwrap();
        let err = p.extend(1, 11).unwrap_err();
        assert_eq!(err.alloc().expect("capacity error").available, 10);
        assert_eq!(p.extend(9, 1), Err(KvCacheError::UnknownRequest { req: 9 }));
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn reservation_never_exceeded(
                reqs in proptest::collection::vec((1u64..50, 1u64..100), 1..30),
            ) {
                let mut p = ContiguousPool::new(100_000);
                for (i, (prompt, extra)) in reqs.iter().enumerate() {
                    p.allocate(i as u64, *prompt, prompt + extra).unwrap();
                }
                prop_assert!(p.logical_tokens() <= p.used_tokens());
                prop_assert!(p.used_tokens() <= p.capacity_tokens());
                let total_reserved: u64 = reqs.iter().map(|(pr, ex)| pr + ex).sum();
                prop_assert_eq!(p.used_tokens(), total_reserved);
            }
        }
    }
}
