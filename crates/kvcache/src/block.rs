//! Block-granular prefix caching and the event-driven global KV index.
//!
//! [`PrefixCache`](crate::PrefixCache) stores one monolithic entry per
//! conversation id, so a router can only ask "does instance *i* hold
//! prefix *p*?". Real KV-aware routers (NVIDIA Dynamo's KV-cache routing
//! being the reference design) work at *block* granularity instead:
//!
//! * prompts are split into fixed-size token blocks and each block is
//!   identified by a **chained hash** — [`block_hash`] of the parent
//!   block's hash and the block's token content — so a block's identity
//!   pins the entire prefix leading up to it;
//! * engines keep a [`BlockPrefixCache`]: the same token-budget LRU
//!   charging as the monolithic cache, but eviction removes block
//!   *suffixes* (leaf blocks first), so a partially evicted prefix still
//!   serves shorter matches;
//! * every store/evict publishes a [`KvEvent`], and a global
//!   [`KvIndexer`] is maintained **purely from those events** — the
//!   router never inspects engine caches directly. A configurable
//!   propagation delay makes stale-index divergence (the router believes
//!   blocks exist that were already evicted) a measurable phenomenon;
//! * engines that do not emit events are covered by an
//!   [`ApproxKvIndexer`], which optimistically records the blocks of
//!   every request it routed and expires them on a TTL.
//!
//! All token counts are in KV token slots, as everywhere in this crate.

// pf-lint: allow(D1): HashMap is only used by the two indexers below for key-addressed lookups; iteration order never escapes
use std::collections::{BTreeMap, HashMap, VecDeque};

use crate::prefix::PrefixCacheStats;

/// Chain seed: the hash of the empty prefix (the parent of block 0).
pub const KV_ROOT_HASH: u64 = 0x9A3C_51B2_77D4_E021;

/// Chained block hash: mixes the parent block's hash with a 64-bit digest
/// of this block's token content (SplitMix64-style finalizer — good
/// avalanche, cheap, stable across platforms).
///
/// Because the parent hash feeds the mix, equal content words at the same
/// depth only collide when their *entire* leading prefixes match — the
/// property that lets a flat hash set answer prefix-overlap queries.
#[must_use]
pub fn block_hash(parent: u64, content: u64) -> u64 {
    let mut z = parent
        .rotate_left(17)
        .wrapping_add(0x9E37_79B9_7F4A_7C15)
        .wrapping_mul(content | 1)
        ^ content;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A KV-cache lifecycle record an engine publishes for the global index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum KvEvent {
    /// A block entered the engine's prefix store.
    Stored {
        /// Chained hash of the stored block.
        block: u64,
        /// Chained hash of its parent (`KV_ROOT_HASH` for block 0).
        parent: u64,
        /// KV token slots the block occupies.
        tokens: u64,
    },
    /// A block was evicted from the engine's prefix store.
    Removed {
        /// Chained hash of the removed block.
        block: u64,
    },
}

/// One stored block of a [`BlockPrefixCache`].
#[derive(Debug, Clone, Copy)]
struct BlockEntry {
    /// Chained hash of the parent block (`KV_ROOT_HASH` for block 0).
    parent: u64,
    /// KV token slots charged for this block.
    tokens: u64,
    /// Logical timestamp of the last touch (insert or matched lookup).
    last_used: u64,
    /// Number of stored blocks whose parent is this block. Only blocks
    /// with zero children (chain leaves) are eviction candidates, which
    /// keeps the store prefix-closed: a stored block's whole leading
    /// prefix is always stored too.
    children: u32,
}

/// Block-granular prefix store: a token-budget LRU over chained-hash
/// blocks that evicts *suffixes first*.
///
/// The store is **prefix-closed** by construction —
/// [`insert_chain`](BlockPrefixCache::insert_chain)
/// inserts a chain front to back and eviction only removes leaves — so a
/// leading-run match against it is exactly the set of prompt tokens whose
/// KV an engine could reuse. Every mutation is buffered as a [`KvEvent`]
/// for the publisher to [`drain_events`](BlockPrefixCache::drain_events).
///
/// Occupancy is meant to be charged against the engine's real KV pool by
/// the caller, exactly like [`PrefixCache`](crate::PrefixCache): the
/// caller reads [`used_tokens`](BlockPrefixCache::used_tokens) and calls
/// [`evict_down_to`](BlockPrefixCache::evict_down_to) when the pool
/// cannot hold the charge.
#[derive(Debug)]
pub struct BlockPrefixCache {
    block_tokens: u64,
    budget_tokens: u64,
    used_tokens: u64,
    clock: u64,
    /// Stored blocks by chained hash. A `BTreeMap` so every iteration
    /// (the eviction victim scan in particular) walks keys in a fixed
    /// order — eviction order feeds [`KvEvent`]s, which are replayed.
    entries: BTreeMap<u64, BlockEntry>,
    stats: PrefixCacheStats,
    events: Vec<KvEvent>,
}

impl BlockPrefixCache {
    /// Creates an empty store holding at most `budget_tokens` across
    /// blocks of `block_tokens` tokens each.
    ///
    /// # Panics
    ///
    /// Panics if `block_tokens` is zero.
    #[must_use]
    pub fn new(budget_tokens: u64, block_tokens: u32) -> Self {
        assert!(block_tokens > 0, "block size must be positive");
        BlockPrefixCache {
            block_tokens: u64::from(block_tokens),
            budget_tokens,
            used_tokens: 0,
            clock: 0,
            entries: BTreeMap::new(),
            stats: PrefixCacheStats::default(),
            events: Vec::new(),
        }
    }

    /// Tokens per block.
    #[must_use]
    pub fn block_tokens(&self) -> u64 {
        self.block_tokens
    }

    /// Maximum tokens the store may hold.
    #[must_use]
    pub fn budget_tokens(&self) -> u64 {
        self.budget_tokens
    }

    /// Tokens currently held (always ≤ the budget).
    #[must_use]
    pub fn used_tokens(&self) -> u64 {
        self.used_tokens
    }

    /// Number of stored blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot (shared shape with the monolithic cache).
    #[must_use]
    pub fn stats(&self) -> PrefixCacheStats {
        self.stats
    }

    /// Whether the block with chained hash `block` is stored.
    #[must_use]
    pub fn contains(&self, block: u64) -> bool {
        self.entries.contains_key(&block)
    }

    fn touch(&mut self, block: u64) {
        self.clock += 1;
        let clock = self.clock;
        if let Some(e) = self.entries.get_mut(&block) {
            e.last_used = clock;
        }
    }

    /// Matched tokens of the longest stored leading run of the chain
    /// described by `contents` (one content word per block, in prompt
    /// order), without recording a lookup or refreshing recency — the
    /// router's side-effect-free probe.
    #[must_use]
    pub fn peek_run(&self, contents: impl IntoIterator<Item = u64>) -> u64 {
        let mut hash = KV_ROOT_HASH;
        let mut matched = 0;
        for content in contents {
            hash = block_hash(hash, content);
            if !self.entries.contains_key(&hash) {
                break;
            }
            matched += self.block_tokens;
        }
        matched
    }

    /// Consumes a hit: matched tokens of the longest stored leading run,
    /// refreshing the recency of every matched block (front to back, so
    /// the run's deepest block ends up most recent) and recording the
    /// lookup in [`stats`](BlockPrefixCache::stats).
    pub fn lookup_run(&mut self, contents: impl IntoIterator<Item = u64>) -> u64 {
        self.stats.lookups += 1;
        let mut hash = KV_ROOT_HASH;
        let mut matched = 0;
        for content in contents {
            hash = block_hash(hash, content);
            if !self.entries.contains_key(&hash) {
                break;
            }
            self.touch(hash);
            matched += self.block_tokens;
        }
        if matched > 0 {
            self.stats.hits += 1;
            self.stats.hit_tokens += matched;
        }
        matched
    }

    /// Stores the chain described by `contents`, charging one block of
    /// tokens per new link and publishing a [`KvEvent::Stored`] for each.
    /// Already-stored links only have their recency refreshed. Returns
    /// the newly stored tokens.
    ///
    /// When the budget fills, older *leaves* are evicted to make room;
    /// blocks of the chain being inserted are never evicted (each link
    /// protects its parent via the child count, and the tip is protected
    /// explicitly). If no room can be freed the chain is cut short —
    /// storing a prefix of the conversation rather than thrashing.
    pub fn insert_chain(&mut self, contents: impl IntoIterator<Item = u64>) -> u64 {
        let mut parent = KV_ROOT_HASH;
        let mut stored = 0;
        for content in contents {
            let hash = block_hash(parent, content);
            if self.entries.contains_key(&hash) {
                self.touch(hash);
            } else {
                if self.block_tokens > self.budget_tokens {
                    break;
                }
                if self.used_tokens + self.block_tokens > self.budget_tokens {
                    self.evict_protected(self.budget_tokens - self.block_tokens, parent);
                    if self.used_tokens + self.block_tokens > self.budget_tokens {
                        break;
                    }
                }
                self.clock += 1;
                self.entries.insert(
                    hash,
                    BlockEntry {
                        parent,
                        tokens: self.block_tokens,
                        last_used: self.clock,
                        children: 0,
                    },
                );
                if let Some(p) = self.entries.get_mut(&parent) {
                    p.children += 1;
                }
                self.used_tokens += self.block_tokens;
                self.stats.insertions += 1;
                self.events.push(KvEvent::Stored {
                    block: hash,
                    parent,
                    tokens: self.block_tokens,
                });
                stored += self.block_tokens;
            }
            parent = hash;
        }
        stored
    }

    /// Evicts least-recently-used leaf blocks until occupancy is at most
    /// `target_tokens` or no evictable leaf remains. Returns freed tokens.
    ///
    /// Only leaves (blocks with no stored children) are candidates, so
    /// eviction trims chains from the back: the surviving store still
    /// serves every shorter prefix of a partially evicted conversation.
    pub fn evict_down_to(&mut self, target_tokens: u64) -> u64 {
        self.evict_protected(target_tokens, KV_ROOT_HASH)
    }

    /// Eviction core: `protect` (and, transitively, its ancestors, which
    /// have children) is never chosen. `KV_ROOT_HASH` protects nothing.
    fn evict_protected(&mut self, target_tokens: u64, protect: u64) -> u64 {
        let mut freed = 0;
        while self.used_tokens > target_tokens {
            let victim = self
                .entries
                .iter()
                .filter(|(hash, e)| e.children == 0 && **hash != protect)
                .min_by_key(|(hash, e)| (e.last_used, **hash))
                .map(|(hash, _)| *hash);
            let Some(victim) = victim else { break };
            let entry = self.entries.remove(&victim).expect("victim exists");
            if let Some(p) = self.entries.get_mut(&entry.parent) {
                p.children -= 1;
            }
            self.used_tokens -= entry.tokens;
            freed += entry.tokens;
            self.stats.evictions += 1;
            self.stats.evicted_tokens += entry.tokens;
            self.events.push(KvEvent::Removed { block: victim });
        }
        freed
    }

    /// Moves all buffered events into `out`, preserving publish order.
    pub fn drain_events(&mut self, out: &mut Vec<KvEvent>) {
        out.append(&mut self.events);
    }

    /// Number of buffered, not-yet-drained events.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }

    /// Drops every block (publishing removal events) and resets counters
    /// except the statistics.
    pub fn clear(&mut self) {
        self.evict_down_to(0);
    }
}

/// The exact global KV index: per-instance block sets maintained **purely
/// from the [`KvEvent`] stream** engines publish.
///
/// A propagation delay (microseconds of simulated time) models the
/// event-bus lag of a real deployment: an event published at `t` becomes
/// visible to overlap queries at `t + delay`. With zero delay the index
/// mirrors engine state exactly at every query; with a positive delay the
/// router can both miss fresh blocks and believe in evicted ones — the
/// stale-divergence the staleness sweeps measure.
#[derive(Debug, Default)]
pub struct KvIndexer {
    delay_micros: u64,
    /// Events not yet applied, in publish order: `(visible_at, instance,
    /// event)`. Publish timestamps must be non-decreasing per instance.
    pending: VecDeque<(u64, u32, KvEvent)>,
    /// Per-instance stored-block sets (block hash → tokens).
    // pf-lint: allow(D1): key-addressed get/insert/remove only — overlap() walks the query chain, never the map
    instances: Vec<HashMap<u64, u64>>,
}

impl KvIndexer {
    /// Creates an index with the given event-propagation delay in
    /// microseconds of simulated time (zero = instantaneous).
    #[must_use]
    pub fn new(delay_micros: u64) -> Self {
        KvIndexer {
            delay_micros,
            pending: VecDeque::new(),
            instances: Vec::new(),
        }
    }

    /// The configured propagation delay in microseconds.
    #[must_use]
    pub fn delay_micros(&self) -> u64 {
        self.delay_micros
    }

    // pf-lint: allow(D1): returns the map for key-addressed mutation only
    fn slot(&mut self, instance: u32) -> &mut HashMap<u64, u64> {
        let i = instance as usize;
        if i >= self.instances.len() {
            self.instances.resize_with(i + 1, HashMap::new); // pf-lint: allow(D1): constructing empty slots
        }
        &mut self.instances[i]
    }

    fn apply(&mut self, instance: u32, event: KvEvent) {
        let set = self.slot(instance);
        match event {
            KvEvent::Stored { block, tokens, .. } => {
                set.insert(block, tokens);
            }
            KvEvent::Removed { block } => {
                set.remove(&block);
            }
        }
    }

    /// Ingests an event published by `instance` at simulated time
    /// `now_micros`. With zero delay it is applied immediately; otherwise
    /// it queues until [`advance`](KvIndexer::advance) passes
    /// `now_micros + delay`.
    pub fn publish(&mut self, instance: u32, event: KvEvent, now_micros: u64) {
        if self.delay_micros == 0 {
            self.apply(instance, event);
        } else {
            self.pending.push_back((
                now_micros.saturating_add(self.delay_micros),
                instance,
                event,
            ));
        }
    }

    /// Applies every queued event that became visible by `now_micros`.
    pub fn advance(&mut self, now_micros: u64) {
        while let Some(&(visible_at, instance, event)) = self.pending.front() {
            if visible_at > now_micros {
                break;
            }
            self.pending.pop_front();
            self.apply(instance, event);
        }
    }

    /// Tokens of the longest leading run of `chain` (pre-computed chained
    /// hashes, in prompt order) the index believes `instance` holds.
    #[must_use]
    pub fn overlap(&self, instance: u32, chain: &[u64]) -> u64 {
        let Some(set) = self.instances.get(instance as usize) else {
            return 0;
        };
        let mut tokens = 0;
        for hash in chain {
            match set.get(hash) {
                Some(t) => tokens += t,
                None => break,
            }
        }
        tokens
    }

    /// Number of blocks the index currently attributes to `instance`.
    #[must_use]
    pub fn blocks(&self, instance: u32) -> usize {
        self.instances
            .get(instance as usize)
            .map_or(0, HashMap::len) // pf-lint: allow(D1): size query, no iteration
    }

    /// Events queued behind the propagation delay.
    #[must_use]
    pub fn pending_events(&self) -> usize {
        self.pending.len()
    }
}

/// Approximate KV index for engines that publish no events (e.g. the
/// disaggregated prefill pool, whose members run the monolithic
/// [`PrefixCache`](crate::PrefixCache)).
///
/// The router [`observe`](ApproxKvIndexer::observe)s the block chain of
/// every request *it* routed and assumes those blocks live on the chosen
/// instance until a TTL expires — optimistic bookkeeping in place of
/// ground truth, the same trade real routers make for engines without
/// event support. It can claim blocks an engine already evicted (until
/// the TTL lapses) but never blocks no routed request would have stored.
#[derive(Debug)]
pub struct ApproxKvIndexer {
    ttl_micros: u64,
    /// Per-instance block hash → expiry time in simulated microseconds.
    // pf-lint: allow(D1): key-addressed lookups plus an order-insensitive retain(); iteration order never escapes
    instances: Vec<HashMap<u64, u64>>,
}

impl ApproxKvIndexer {
    /// Creates an approximate index whose observations expire
    /// `ttl_micros` simulated microseconds after the last touch.
    ///
    /// # Panics
    ///
    /// Panics if `ttl_micros` is zero.
    #[must_use]
    pub fn new(ttl_micros: u64) -> Self {
        assert!(ttl_micros > 0, "TTL must be positive");
        ApproxKvIndexer {
            ttl_micros,
            instances: Vec::new(),
        }
    }

    /// The configured TTL in microseconds.
    #[must_use]
    pub fn ttl_micros(&self) -> u64 {
        self.ttl_micros
    }

    /// Records that a request whose prompt hashes to `chain` was routed
    /// to `instance` at `now_micros`: every block of the chain is assumed
    /// stored there until the TTL lapses (re-observation refreshes it).
    pub fn observe(&mut self, instance: u32, chain: &[u64], now_micros: u64) {
        let i = instance as usize;
        if i >= self.instances.len() {
            self.instances.resize_with(i + 1, HashMap::new); // pf-lint: allow(D1): constructing empty slots
        }
        let expiry = now_micros.saturating_add(self.ttl_micros);
        for &hash in chain {
            let slot = self.instances[i].entry(hash).or_insert(0);
            *slot = (*slot).max(expiry);
        }
    }

    /// Blocks of the longest leading run of `chain` believed live on
    /// `instance` at `now_micros`.
    #[must_use]
    pub fn overlap_blocks(&self, instance: u32, chain: &[u64], now_micros: u64) -> u64 {
        let Some(set) = self.instances.get(instance as usize) else {
            return 0;
        };
        let mut blocks = 0;
        for hash in chain {
            match set.get(hash) {
                Some(&expiry) if expiry > now_micros => blocks += 1,
                _ => break,
            }
        }
        blocks
    }

    /// Drops expired observations (bounds memory on long runs).
    pub fn compact(&mut self, now_micros: u64) {
        for set in &mut self.instances {
            set.retain(|_, expiry| *expiry > now_micros);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(contents: &[u64]) -> Vec<u64> {
        let mut out = Vec::with_capacity(contents.len());
        let mut h = KV_ROOT_HASH;
        for &c in contents {
            h = block_hash(h, c);
            out.push(h);
        }
        out
    }

    #[test]
    fn chained_hash_is_deterministic_and_prefix_stable() {
        let a = chain(&[1, 2, 3]);
        let b = chain(&[1, 2, 3, 4]);
        assert_eq!(a, chain(&[1, 2, 3]));
        // Extending a prefix leaves the leading hashes untouched.
        assert_eq!(a[..], b[..3]);
        // Different content diverges and stays diverged.
        let c = chain(&[1, 9, 3]);
        assert_ne!(a[1], c[1]);
        assert_ne!(a[2], c[2]);
    }

    #[test]
    fn store_matches_runs_and_counts_partial_hits() {
        let mut store = BlockPrefixCache::new(1_000, 10);
        assert_eq!(store.insert_chain([1, 2, 3]), 30);
        assert_eq!(store.used_tokens(), 30);
        assert_eq!(store.peek_run([1, 2, 3]), 30);
        assert_eq!(store.peek_run([1, 2]), 20);
        assert_eq!(store.peek_run([1, 2, 9]), 20);
        assert_eq!(store.peek_run([9, 2, 3]), 0);
        assert_eq!(store.lookup_run([1, 2, 9, 9]), 20);
        let stats = store.stats();
        assert_eq!((stats.lookups, stats.hits, stats.hit_tokens), (1, 1, 20));
    }

    #[test]
    fn shared_leading_blocks_are_stored_once() {
        let mut store = BlockPrefixCache::new(1_000, 10);
        store.insert_chain([7, 7, 1]);
        let stored = store.insert_chain([7, 7, 2]);
        // Only the diverging third block is new.
        assert_eq!(stored, 10);
        assert_eq!(store.used_tokens(), 40);
    }

    #[test]
    fn eviction_removes_suffixes_first() {
        let mut store = BlockPrefixCache::new(40, 10);
        store.insert_chain([1, 2, 3, 4]);
        store.evict_down_to(20);
        // The chain survives as its leading half.
        assert_eq!(store.peek_run([1, 2, 3, 4]), 20);
        assert_eq!(store.used_tokens(), 20);
    }

    #[test]
    fn insert_evicts_lru_leaves_to_make_room() {
        let mut store = BlockPrefixCache::new(30, 10);
        store.insert_chain([1, 2]);
        store.insert_chain([8]);
        // Touch the [1, 2] chain so [8] is the LRU leaf.
        assert_eq!(store.lookup_run([1, 2]), 20);
        store.insert_chain([9]);
        assert_eq!(store.peek_run([8]), 0, "LRU leaf should have been evicted");
        assert_eq!(store.peek_run([1, 2]), 20);
        assert_eq!(store.peek_run([9]), 10);
        assert_eq!(store.used_tokens(), 30);
    }

    #[test]
    fn over_budget_chain_is_cut_short_not_thrashed() {
        let mut store = BlockPrefixCache::new(30, 10);
        let stored = store.insert_chain([1, 2, 3, 4, 5]);
        assert_eq!(stored, 30);
        assert_eq!(store.peek_run([1, 2, 3, 4, 5]), 30);
        assert_eq!(store.used_tokens(), 30);
    }

    /// Regression pin for the determinism contract: the eviction event
    /// *order* is part of the replayed surface (events feed the global
    /// [`KvIndexer`], whose state feeds routing). The victim scan iterates
    /// `entries`, so the map must have a fixed iteration order — this test
    /// pins the exact sequence interleaved leaf/parent eviction produces.
    #[test]
    fn eviction_event_order_is_pinned() {
        let run = || {
            let mut store = BlockPrefixCache::new(60, 10);
            store.insert_chain([1, 2, 3]); // clocks 1, 2, 3
            store.insert_chain([1, 9]); // touches h(1) at 4, stores leaf at 5
            store.insert_chain([5]); // stores leaf at 6
            let mut events = Vec::new();
            store.drain_events(&mut events);
            store.evict_down_to(0);
            store.drain_events(&mut events);
            events
        };
        let events = run();
        assert_eq!(
            events,
            run(),
            "identical drives must emit identical event streams"
        );

        let c123 = chain(&[1, 2, 3]);
        let c19 = chain(&[1, 9]);
        let c5 = chain(&[5]);
        let removed: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                KvEvent::Removed { block } => Some(*block),
                KvEvent::Stored { .. } => None,
            })
            .collect();
        // LRU leaves fall first; evicting a leaf exposes its parent, whose
        // *older* recency can jump the queue: [1,2,3]'s tail (clock 3),
        // then its parent (clock 2), then leaf h(1,9) (clock 5), then the
        // now-leaf h(1) (clock 4), then h(5) (clock 6).
        assert_eq!(removed, vec![c123[2], c123[1], c19[1], c123[0], c5[0]]);
    }

    #[test]
    fn events_mirror_mutations() {
        let mut store = BlockPrefixCache::new(40, 10);
        store.insert_chain([1, 2]);
        store.evict_down_to(10);
        let mut events = Vec::new();
        store.drain_events(&mut events);
        let hashes = chain(&[1, 2]);
        assert_eq!(
            events,
            vec![
                KvEvent::Stored {
                    block: hashes[0],
                    parent: KV_ROOT_HASH,
                    tokens: 10
                },
                KvEvent::Stored {
                    block: hashes[1],
                    parent: hashes[0],
                    tokens: 10
                },
                KvEvent::Removed { block: hashes[1] },
            ]
        );
        assert_eq!(store.pending_events(), 0);
    }

    #[test]
    fn indexer_tracks_events_and_delay() {
        let mut idx = KvIndexer::new(1_000);
        let hashes = chain(&[1, 2]);
        idx.publish(
            0,
            KvEvent::Stored {
                block: hashes[0],
                parent: KV_ROOT_HASH,
                tokens: 10,
            },
            0,
        );
        idx.publish(
            0,
            KvEvent::Stored {
                block: hashes[1],
                parent: hashes[0],
                tokens: 10,
            },
            500,
        );
        idx.advance(999);
        assert_eq!(idx.overlap(0, &hashes), 0, "events still propagating");
        idx.advance(1_000);
        assert_eq!(idx.overlap(0, &hashes), 10);
        idx.advance(1_500);
        assert_eq!(idx.overlap(0, &hashes), 20);
        idx.publish(0, KvEvent::Removed { block: hashes[1] }, 2_000);
        idx.advance(3_000);
        assert_eq!(idx.overlap(0, &hashes), 10);
        assert_eq!(idx.blocks(0), 1);
        assert_eq!(idx.overlap(1, &hashes), 0);
    }

    #[test]
    fn approx_indexer_expires_on_ttl() {
        let mut idx = ApproxKvIndexer::new(1_000);
        let hashes = chain(&[1, 2, 3]);
        idx.observe(2, &hashes, 0);
        assert_eq!(idx.overlap_blocks(2, &hashes, 999), 3);
        assert_eq!(idx.overlap_blocks(2, &hashes, 1_000), 0);
        // Re-observation refreshes the leading blocks only.
        idx.observe(2, &hashes[..1], 500);
        assert_eq!(idx.overlap_blocks(2, &hashes, 1_200), 1);
        idx.compact(2_000);
        assert_eq!(idx.overlap_blocks(2, &hashes, 0), 0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            /// Chained hashing is deterministic and prefix-extension
            /// leaves leading hashes bit-identical.
            #[test]
            fn chain_prefix_extension_identity(
                base in proptest::collection::vec(0u64..1_000, 0..40),
                ext in proptest::collection::vec(0u64..1_000, 0..40),
            ) {
                let mut full = base.clone();
                full.extend_from_slice(&ext);
                let a = chain(&base);
                let b = chain(&full);
                prop_assert_eq!(&a[..], &b[..base.len()]);
                prop_assert_eq!(&a, &chain(&base));
            }

            /// The exact indexer conserves stored-minus-removed under
            /// arbitrary interleavings of valid store/evict streams from
            /// several instances.
            #[test]
            fn indexer_conserves_stored_minus_removed(
                ops in proptest::collection::vec(
                    (0u32..3, 0u64..12, 0u8..2), 0..120),
                delayed in 0u8..2,
            ) {
                let mut idx = KvIndexer::new(u64::from(delayed) * 700);
                let mut shadow: Vec<std::collections::HashMap<u64, u64>> =
                    vec![Default::default(); 3];
                // Per-instance stores generate *valid* event streams
                // (no remove of a never-stored block), which the op
                // sequence interleaves across instances.
                let mut stores: Vec<BlockPrefixCache> =
                    (0..3).map(|_| BlockPrefixCache::new(40, 10)).collect();
                let mut events = Vec::new();
                for (t, (inst, content, evict)) in ops.into_iter().enumerate() {
                    let now = t as u64 * 100;
                    let store = &mut stores[inst as usize];
                    if evict == 1 {
                        let target = store.used_tokens() / 2;
                        store.evict_down_to(target);
                    } else {
                        store.insert_chain([content, content ^ 7]);
                    }
                    events.clear();
                    store.drain_events(&mut events);
                    for &ev in &events {
                        idx.publish(inst, ev, now);
                        match ev {
                            KvEvent::Stored { block, tokens, .. } => {
                                shadow[inst as usize].insert(block, tokens);
                            }
                            KvEvent::Removed { block } => {
                                shadow[inst as usize].remove(&block);
                            }
                        }
                    }
                }
                idx.advance(u64::MAX);
                for inst in 0..3u32 {
                    prop_assert_eq!(
                        idx.blocks(inst), shadow[inst as usize].len(),
                        "instance {} diverged from ground truth", inst
                    );
                    for (&block, &tokens) in &shadow[inst as usize] {
                        prop_assert_eq!(idx.overlap(inst, &[block]), tokens);
                    }
                }
            }

            /// The approximate indexer is optimistic but never invents:
            /// it must not report a block the exact indexer (fed by a
            /// store that never evicts) would not have stored.
            #[test]
            fn approx_never_reports_never_stored_blocks(
                routes in proptest::collection::vec(
                    (0u32..3, proptest::collection::vec(0u64..6, 1..6)), 1..40),
                probe in proptest::collection::vec(0u64..6, 1..6),
            ) {
                let mut approx = ApproxKvIndexer::new(10_000);
                let mut exact = KvIndexer::new(0);
                let mut stores: Vec<BlockPrefixCache> =
                    (0..3).map(|_| BlockPrefixCache::new(u64::MAX, 10)).collect();
                let mut events = Vec::new();
                for (t, (inst, contents)) in routes.iter().enumerate() {
                    let now = t as u64 * 100;
                    let hashes = chain(contents);
                    approx.observe(*inst, &hashes, now);
                    stores[*inst as usize].insert_chain(contents.iter().copied());
                    events.clear();
                    stores[*inst as usize].drain_events(&mut events);
                    for &ev in &events {
                        exact.publish(*inst, ev, now);
                    }
                }
                let probe_hashes = chain(&probe);
                for inst in 0..3u32 {
                    for now in [0u64, 5_000, 20_000] {
                        let approx_tokens =
                            approx.overlap_blocks(inst, &probe_hashes, now) * 10;
                        prop_assert!(
                            approx_tokens <= exact.overlap(inst, &probe_hashes),
                            "approx claims {} tokens on instance {} but only {} were ever stored",
                            approx_tokens, inst, exact.overlap(inst, &probe_hashes)
                        );
                    }
                }
            }
        }
    }
}
