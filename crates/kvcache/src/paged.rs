//! Block-granularity KV-cache pool (vLLM PagedAttention).

use std::collections::HashMap;

use crate::{AllocError, KvCacheError, KvCacheManager};

#[derive(Debug, Clone, Copy)]
struct PagedEntry {
    logical: u64,
    blocks: u64,
}

/// Fixed-size block allocator modelling vLLM's PagedAttention.
///
/// Logical tokens are stored in blocks of `block_size` slots; a request's
/// last block may be partially filled, which is the only internal
/// fragmentation. Physical usage is always a multiple of the block size.
///
/// # Example
///
/// ```
/// use pf_kvcache::{KvCacheManager, PagedPool};
///
/// let mut pool = PagedPool::new(64, 16);
/// pool.allocate(1, 17, 17)?; // needs 2 blocks = 32 physical slots
/// assert_eq!(pool.logical_tokens(), 17);
/// assert_eq!(pool.used_tokens(), 32);
/// assert_eq!(pool.overhead_tokens(), 15);
/// # Ok::<(), pf_kvcache::KvCacheError>(())
/// ```
#[derive(Debug, Clone)]
pub struct PagedPool {
    capacity_blocks: u64,
    block_size: u64,
    used_blocks: u64,
    logical: u64,
    peak_blocks: u64,
    requests: HashMap<u64, PagedEntry>,
}

impl PagedPool {
    /// Creates a pool with (at least) `capacity_tokens` slots organized in
    /// `block_size`-token blocks. Capacity rounds *down* to whole blocks,
    /// matching a real allocator that cannot use a partial block.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero.
    pub fn new(capacity_tokens: u64, block_size: u64) -> Self {
        assert!(block_size > 0, "block size must be positive");
        PagedPool {
            capacity_blocks: capacity_tokens / block_size,
            block_size,
            used_blocks: 0,
            logical: 0,
            peak_blocks: 0,
            requests: HashMap::new(),
        }
    }

    /// Block size in tokens.
    pub fn block_size(&self) -> u64 {
        self.block_size
    }

    /// Free blocks remaining.
    pub fn free_blocks(&self) -> u64 {
        self.capacity_blocks - self.used_blocks
    }

    fn blocks_for(&self, tokens: u64) -> u64 {
        tokens.div_ceil(self.block_size)
    }

    fn bump_peak(&mut self) {
        self.peak_blocks = self.peak_blocks.max(self.used_blocks);
    }
}

impl KvCacheManager for PagedPool {
    fn capacity_tokens(&self) -> u64 {
        self.capacity_blocks * self.block_size
    }

    fn used_tokens(&self) -> u64 {
        self.used_blocks * self.block_size
    }

    fn logical_tokens(&self) -> u64 {
        self.logical
    }

    fn can_admit(&self, tokens: u64, _reserve_total: u64) -> bool {
        self.blocks_for(tokens) <= self.free_blocks()
    }

    fn allocate(&mut self, req: u64, tokens: u64, _reserve_total: u64) -> Result<(), AllocError> {
        assert!(
            !self.requests.contains_key(&req),
            "request {req} already allocated"
        );
        let blocks = self.blocks_for(tokens);
        if blocks > self.free_blocks() {
            return Err(AllocError {
                requested: tokens,
                available: self.free_blocks() * self.block_size,
            });
        }
        self.requests.insert(
            req,
            PagedEntry {
                logical: tokens,
                blocks,
            },
        );
        self.used_blocks += blocks;
        self.logical += tokens;
        self.bump_peak();
        Ok(())
    }

    fn extend(&mut self, req: u64, tokens: u64) -> Result<(), KvCacheError> {
        let free_blocks = self.free_blocks();
        let block_size = self.block_size;
        let Some(entry) = self.requests.get_mut(&req) else {
            debug_assert!(false, "extend of unknown request {req}");
            return Err(KvCacheError::UnknownRequest { req });
        };
        let new_blocks = (entry.logical + tokens).div_ceil(block_size);
        let extra = new_blocks.saturating_sub(entry.blocks);
        if extra > free_blocks {
            return Err(AllocError {
                requested: tokens,
                available: free_blocks * block_size,
            }
            .into());
        }
        entry.logical += tokens;
        entry.blocks = new_blocks;
        self.used_blocks += extra;
        self.logical += tokens;
        self.bump_peak();
        Ok(())
    }

    fn release(&mut self, req: u64) -> u64 {
        match self.requests.remove(&req) {
            Some(entry) => {
                self.used_blocks -= entry.blocks;
                self.logical -= entry.logical;
                entry.blocks * self.block_size
            }
            None => 0,
        }
    }

    fn extension_shortfall(&self, requests: &[u64]) -> Result<u64, KvCacheError> {
        let mut blocks_needed = 0u64;
        for &req in requests {
            let Some(entry) = self.requests.get(&req) else {
                debug_assert!(false, "unknown request {req}");
                return Err(KvCacheError::UnknownRequest { req });
            };
            // A new block is needed exactly when every allocated block is
            // full (including the zero-token, zero-block case).
            if entry.logical == entry.blocks * self.block_size {
                blocks_needed += 1;
            }
        }
        Ok(blocks_needed.saturating_sub(self.free_blocks()) * self.block_size)
    }

    fn peak_used_tokens(&self) -> u64 {
        self.peak_blocks * self.block_size
    }

    fn n_requests(&self) -> usize {
        self.requests.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_rounds_down_to_blocks() {
        let p = PagedPool::new(100, 16);
        assert_eq!(p.capacity_tokens(), 96);
        assert_eq!(p.free_blocks(), 6);
    }

    #[test]
    fn fragmentation_confined_to_last_block() {
        let mut p = PagedPool::new(160, 16);
        p.allocate(1, 1, 1).unwrap();
        assert_eq!(p.used_tokens(), 16);
        assert_eq!(p.overhead_tokens(), 15);
        // Filling the block adds no physical usage.
        p.extend(1, 15).unwrap();
        assert_eq!(p.used_tokens(), 16);
        assert_eq!(p.overhead_tokens(), 0);
        // One more token starts a new block.
        p.extend(1, 1).unwrap();
        assert_eq!(p.used_tokens(), 32);
    }

    #[test]
    fn extend_fails_only_when_new_block_needed() {
        let mut p = PagedPool::new(16, 16);
        p.allocate(1, 10, 10).unwrap();
        p.extend(1, 6).unwrap(); // fills the single block
        let err = p.extend(1, 1).unwrap_err();
        assert_eq!(err.alloc().expect("capacity error").available, 0);
        assert_eq!(p.logical_tokens(), 16);
    }

    #[test]
    fn release_returns_block_multiple() {
        let mut p = PagedPool::new(64, 16);
        p.allocate(1, 20, 20).unwrap();
        assert_eq!(p.release(1), 32);
        assert_eq!(p.used_tokens(), 0);
        assert_eq!(p.logical_tokens(), 0);
    }

    #[test]
    fn can_admit_in_blocks() {
        let mut p = PagedPool::new(32, 16);
        p.allocate(1, 17, 17).unwrap(); // consumes both blocks
        assert!(!p.can_admit(1, 1));
        p.release(1);
        assert!(p.can_admit(32, 32));
        assert!(!p.can_admit(33, 33));
    }

    #[test]
    fn zero_token_allocate() {
        let mut p = PagedPool::new(32, 16);
        p.allocate(1, 0, 0).unwrap();
        assert_eq!(p.used_tokens(), 0);
        assert_eq!(p.n_requests(), 1);
        assert_eq!(p.release(1), 0);
    }

    #[test]
    #[should_panic(expected = "block size must be positive")]
    fn zero_block_size_panics() {
        let _ = PagedPool::new(16, 0);
    }

    #[test]
    #[should_panic(expected = "unknown request")]
    #[cfg(debug_assertions)]
    fn extend_unknown_panics_in_debug() {
        let mut p = PagedPool::new(32, 16);
        let _ = p.extend(9, 1);
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn extend_unknown_errors_in_release() {
        let mut p = PagedPool::new(32, 16);
        assert_eq!(p.extend(9, 1), Err(KvCacheError::UnknownRequest { req: 9 }));
        assert_eq!(
            p.extension_shortfall(&[9]),
            Err(KvCacheError::UnknownRequest { req: 9 })
        );
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #[test]
            fn physical_geq_logical_and_blocks_exact(
                allocs in proptest::collection::vec((1u64..6, 1u64..100), 1..20),
                block_size in 1u64..32,
            ) {
                let mut p = PagedPool::new(10_000, block_size);
                let mut next_req = 0u64;
                for (_, tokens) in &allocs {
                    if p.allocate(next_req, *tokens, *tokens).is_ok() {
                        next_req += 1;
                    }
                }
                prop_assert!(p.used_tokens() >= p.logical_tokens());
                // Overhead strictly less than one block per request.
                prop_assert!(p.overhead_tokens() < block_size * next_req.max(1));
                // Physical usage is a whole number of blocks.
                prop_assert_eq!(p.used_tokens() % block_size, 0);
            }

            #[test]
            fn release_all_restores_empty(
                sizes in proptest::collection::vec(1u64..200, 1..30),
                block_size in 1u64..64,
            ) {
                let mut p = PagedPool::new(100_000, block_size);
                for (i, s) in sizes.iter().enumerate() {
                    p.allocate(i as u64, *s, *s).unwrap();
                }
                for i in 0..sizes.len() {
                    p.release(i as u64);
                }
                prop_assert_eq!(p.used_tokens(), 0);
                prop_assert_eq!(p.logical_tokens(), 0);
                prop_assert_eq!(p.n_requests(), 0);
            }
        }
    }
}
