//! Property tests for the span reconstructor: for arbitrary generated
//! request lifecycles, the reconstructed phases always partition each
//! request's lifetime exactly, and reconstruction is order-stable (any
//! permutation of the event stream yields identical spans).

use pf_metrics::SimTime;
use pf_obs::{reconstruct, SpanOutcome, TraceEvent};
use proptest::prelude::*;

/// Parameters of one synthetic request lifecycle, all gaps in
/// microseconds. `preemptions` inserts that many decode→queue→prefill
/// round-trips; `transfer` routes the request through a KV-link handoff
/// (with `stall_us` spent waiting for a slot); `cancelled` times it out
/// in the queue instead of finishing.
#[derive(Debug, Clone)]
struct LifeParams {
    start_us: u64,
    queue_us: u64,
    prefill_us: u64,
    decode_us: u64,
    preemptions: usize,
    transfer: bool,
    stall_us: u64,
    cancelled: bool,
}

fn life_params() -> impl Strategy<Value = LifeParams> {
    (
        (0u64..1_000_000, 1u64..50_000, 1u64..50_000, 1u64..200_000),
        (0usize..3, 0u32..2, 0u64..10_000, 0u32..2),
    )
        .prop_map(
            |(
                (start_us, queue_us, prefill_us, decode_us),
                (preemptions, transfer, stall_us, cancelled),
            )| {
                LifeParams {
                    start_us,
                    queue_us,
                    prefill_us,
                    decode_us,
                    preemptions,
                    transfer: transfer != 0,
                    stall_us,
                    cancelled: cancelled != 0,
                }
            },
        )
}

/// Expands one request's parameters into its event stream.
fn events_for(request: u64, p: &LifeParams) -> Vec<TraceEvent> {
    let instance = (request % 4) as u32;
    let mut t = p.start_us;
    let at = |us: u64| SimTime::from_micros(us);
    let mut events = vec![TraceEvent::Enqueued {
        at: at(t),
        instance,
        request,
    }];
    t += p.queue_us;
    if p.cancelled {
        events.push(TraceEvent::TimedOut {
            at: at(t),
            instance,
            request,
        });
        return events;
    }
    for cycle in 0..=p.preemptions {
        events.push(TraceEvent::Admitted {
            at: at(t),
            instance,
            request,
        });
        events.push(TraceEvent::PrefillStart {
            at: at(t),
            instance,
            request,
        });
        t += p.prefill_us;
        events.push(TraceEvent::PrefillEnd {
            at: at(t),
            instance,
            request,
        });
        if cycle == 0 {
            events.push(TraceEvent::FirstToken {
                at: at(t),
                instance,
                request,
            });
        }
        if cycle < p.preemptions {
            t += p.decode_us / (p.preemptions as u64 + 1) + 1;
            events.push(TraceEvent::Preempted {
                at: at(t),
                instance,
                request,
            });
            t += p.queue_us / 2 + 1;
        }
    }
    if p.transfer {
        t += p.stall_us;
        events.push(TraceEvent::KvTransferStart {
            at: at(t),
            instance,
            request,
        });
        t += p.prefill_us / 2 + 1;
        events.push(TraceEvent::KvTransferEnd {
            at: at(t),
            instance: instance + 4,
            request,
        });
    }
    t += p.decode_us;
    events.push(TraceEvent::Finished {
        at: at(t),
        instance: if p.transfer { instance + 4 } else { instance },
        request,
        sla_ok: !request.is_multiple_of(3),
    });
    events
}

/// Deterministic Fisher-Yates over a seed (the shim proptest has no
/// shuffle strategy; an LCG is plenty for permutation coverage).
fn shuffle<T>(items: &mut [T], mut seed: u64) {
    for i in (1..items.len()).rev() {
        seed = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (seed >> 33) as usize % (i + 1);
        items.swap(i, j);
    }
}

proptest! {
    #[test]
    fn phases_always_partition_lifetime(
        lives in proptest::collection::vec(life_params(), 1..20),
    ) {
        let events: Vec<TraceEvent> = lives
            .iter()
            .enumerate()
            .flat_map(|(i, p)| events_for(i as u64, p))
            .collect();
        let spans = reconstruct(&events);
        prop_assert_eq!(spans.len(), lives.len());
        for (span, p) in spans.iter().zip(&lives) {
            prop_assert!(
                span.phases_partition_lifetime(),
                "request {} phases do not partition [{:?}, {:?}]: {:?}",
                span.request,
                span.enqueued,
                span.ended,
                span.phases
            );
            let expect_cancelled = p.cancelled;
            match span.outcome {
                SpanOutcome::TimedOut => prop_assert!(expect_cancelled),
                SpanOutcome::Finished { .. } => prop_assert!(!expect_cancelled),
                other => prop_assert!(false, "unexpected outcome {other:?}"),
            }
        }
    }

    #[test]
    fn reconstruction_is_order_stable(
        lives in proptest::collection::vec(life_params(), 1..12),
        seed in 0u64..u64::MAX,
    ) {
        let events: Vec<TraceEvent> = lives
            .iter()
            .enumerate()
            .flat_map(|(i, p)| events_for(i as u64, p))
            .collect();
        let baseline = reconstruct(&events);
        let mut shuffled = events.clone();
        shuffle(&mut shuffled, seed);
        prop_assert_eq!(reconstruct(&shuffled), baseline.clone());
        let mut reversed = events;
        reversed.reverse();
        prop_assert_eq!(reconstruct(&reversed), baseline);
    }
}
