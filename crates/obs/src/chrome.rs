//! Chrome trace-event JSON export (Perfetto-loadable).
//!
//! Produces the legacy Chrome `traceEvents` JSON format, which
//! [Perfetto](https://ui.perfetto.dev) and `chrome://tracing` both load:
//! one duration (`"ph":"X"`) slice per reconstructed request phase, one
//! named track (`tid`) per engine instance, instant markers for
//! cancellations and scaling actions, and thread-name metadata so tracks
//! read "instance 0", "instance 1", … "cluster". Timestamps are the
//! simulator's native microseconds — the unit the format expects — so
//! slices land at their exact simulated times.
//!
//! The writer is hand-rolled: every emitted string is a static
//! kebab-case label or a formatted integer, so no JSON escaping is
//! needed (asserted in debug builds).

use crate::event::TraceEvent;
use crate::span::{reconstruct, RequestSpans, SpanOutcome};

/// `tid` of the synthetic track carrying cluster-scoped events (scaling,
/// repurposing). Real instances are dense from zero and never reach it.
const CLUSTER_TRACK: u64 = 1_000_000;

/// Renders an event stream as Chrome trace-event JSON.
///
/// The output is deterministic for a given event stream: entries are
/// sorted by `(track, start, name, request)` before rendering.
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let spans = reconstruct(events);
    chrome_trace_json_from_spans(&spans, events)
}

/// Renders pre-reconstructed spans (plus the original stream, for
/// instant markers and track discovery) as Chrome trace-event JSON.
pub fn chrome_trace_json_from_spans(spans: &[RequestSpans], events: &[TraceEvent]) -> String {
    // (tid, ts, name, request, rendered-json-object)
    let mut entries: Vec<(u64, u64, &'static str, u64, String)> = Vec::new();
    let mut tracks: Vec<u64> = Vec::new();
    fn track(tracks: &mut Vec<u64>, tid: u64) {
        if !tracks.contains(&tid) {
            tracks.push(tid);
        }
    }

    for span in spans {
        for phase in &span.phases {
            let tid = u64::from(phase.instance);
            track(&mut tracks, tid);
            let ts = phase.start.as_micros();
            let dur = phase.end.as_micros() - ts;
            let name = phase.phase.label();
            entries.push((
                tid,
                ts,
                name,
                span.request,
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":{ts},\
                     \"dur\":{dur},\"pid\":0,\"tid\":{tid},\"args\":{{\"request\":{req}}}}}",
                    req = span.request,
                ),
            ));
        }
        // Cancellations as instant markers on the owning track.
        let marker = match span.outcome {
            SpanOutcome::TimedOut => Some("timed-out"),
            SpanOutcome::SlackDropped => Some("slack-dropped"),
            SpanOutcome::Finished { .. } | SpanOutcome::Incomplete => None,
        };
        if let Some(name) = marker {
            let tid = u64::from(span.instance);
            track(&mut tracks, tid);
            let ts = span.ended.as_micros();
            entries.push((
                tid,
                ts,
                name,
                span.request,
                format!(
                    "{{\"name\":\"{name}\",\"cat\":\"request\",\"ph\":\"i\",\"ts\":{ts},\
                     \"pid\":0,\"tid\":{tid},\"s\":\"t\",\"args\":{{\"request\":{req}}}}}",
                    req = span.request,
                ),
            ));
        }
    }

    for ev in events {
        let (name, detail) = match *ev {
            TraceEvent::ScaleUp { pool, from, to, .. } => (
                "scale-up",
                format!("\"pool\":\"{}\",\"from\":{from},\"to\":{to}", pool.label()),
            ),
            TraceEvent::ScaleDown { pool, from, to, .. } => (
                "scale-down",
                format!("\"pool\":\"{}\",\"from\":{from},\"to\":{to}", pool.label()),
            ),
            TraceEvent::Repurposed {
                from_instance,
                to_instance,
                ..
            } => (
                "repurposed",
                format!("\"from_instance\":{from_instance},\"to_instance\":{to_instance}"),
            ),
            _ => continue,
        };
        track(&mut tracks, CLUSTER_TRACK);
        let ts = ev.at().as_micros();
        entries.push((
            CLUSTER_TRACK,
            ts,
            name,
            0,
            format!(
                "{{\"name\":\"{name}\",\"cat\":\"cluster\",\"ph\":\"i\",\"ts\":{ts},\
                 \"pid\":0,\"tid\":{CLUSTER_TRACK},\"s\":\"p\",\"args\":{{{detail}}}}}"
            ),
        ));
    }

    entries.sort_by(|a, b| (a.0, a.1, a.2, a.3).cmp(&(b.0, b.1, b.2, b.3)));
    tracks.sort_unstable();

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    for tid in tracks {
        let label = if tid == CLUSTER_TRACK {
            "cluster".to_string()
        } else {
            format!("instance {tid}")
        };
        push_entry(
            &mut out,
            &mut first,
            &format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\
                 \"args\":{{\"name\":\"{label}\"}}}}"
            ),
        );
    }
    for (_, _, _, _, json) in &entries {
        push_entry(&mut out, &mut first, json);
    }
    out.push_str("\n]}\n");
    debug_assert!(!out.contains('\\'), "trace JSON must not need escaping");
    out
}

fn push_entry(out: &mut String, first: &mut bool, json: &str) {
    if !*first {
        out.push_str(",\n");
    }
    *first = false;
    out.push_str(json);
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_metrics::SimTime;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn tiny_stream() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Enqueued {
                at: t(0),
                instance: 0,
                request: 1,
            },
            TraceEvent::Admitted {
                at: t(2),
                instance: 0,
                request: 1,
            },
            TraceEvent::PrefillEnd {
                at: t(5),
                instance: 0,
                request: 1,
            },
            TraceEvent::FirstToken {
                at: t(5),
                instance: 0,
                request: 1,
            },
            TraceEvent::Finished {
                at: t(9),
                instance: 0,
                request: 1,
                sla_ok: true,
            },
            TraceEvent::ScaleUp {
                at: t(4),
                pool: crate::event::Pool::Colocated,
                from: 1,
                to: 2,
            },
        ]
    }

    /// Golden snapshot: the exact JSON for a tiny deterministic stream.
    /// If this changes, the export format changed — update the snapshot
    /// *and* docs/observability.md deliberately.
    #[test]
    fn golden_chrome_trace_snapshot() {
        let expected = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n\
            {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":0,\"args\":{\"name\":\"instance 0\"}},\n\
            {\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":0,\"tid\":1000000,\"args\":{\"name\":\"cluster\"}},\n\
            {\"name\":\"queue\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":0,\"dur\":2000,\"pid\":0,\"tid\":0,\"args\":{\"request\":1}},\n\
            {\"name\":\"prefill\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":2000,\"dur\":3000,\"pid\":0,\"tid\":0,\"args\":{\"request\":1}},\n\
            {\"name\":\"decode\",\"cat\":\"request\",\"ph\":\"X\",\"ts\":5000,\"dur\":4000,\"pid\":0,\"tid\":0,\"args\":{\"request\":1}},\n\
            {\"name\":\"scale-up\",\"cat\":\"cluster\",\"ph\":\"i\",\"ts\":4000,\"pid\":0,\"tid\":1000000,\"s\":\"p\",\"args\":{\"pool\":\"colocated\",\"from\":1,\"to\":2}}\n\
            ]}\n";
        assert_eq!(chrome_trace_json(&tiny_stream()), expected);
    }

    #[test]
    fn export_is_order_stable() {
        let mut shuffled = tiny_stream();
        shuffled.reverse();
        assert_eq!(
            chrome_trace_json(&shuffled),
            chrome_trace_json(&tiny_stream())
        );
    }

    #[test]
    fn cancellation_renders_instant_marker() {
        let events = vec![
            TraceEvent::Enqueued {
                at: t(0),
                instance: 2,
                request: 7,
            },
            TraceEvent::TimedOut {
                at: t(3),
                instance: 2,
                request: 7,
            },
        ];
        let json = chrome_trace_json(&events);
        assert!(json.contains("\"name\":\"timed-out\""));
        assert!(json.contains("\"tid\":2"));
        assert!(json.contains("instance 2"));
    }

    #[test]
    fn empty_stream_is_valid_json_shell() {
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n\n]}\n"
        );
    }
}
