//! Zero-cost-when-disabled observability for the Past-Future serving
//! simulator.
//!
//! The simulator's engines (`pf-sim`) emit [`TraceEvent`]s at every
//! request lifecycle transition — enqueue, admission, prefill, first
//! token, decode steps, preemption, KV handoff, timeout, finish — plus
//! cluster-scoped scaling and repurposing events, behind an
//! `Option<&mut dyn TraceSink>`. Passing `None` costs one predictable
//! branch per site: no allocation, no formatting, bit-identical reports.
//!
//! This crate provides the taxonomy and the consumers:
//!
//! * [`event`] — the [`TraceEvent`] enum, the [`TraceSink`] trait, and
//!   the in-memory [`RecordingSink`] / [`CountingSink`];
//! * [`span`] — [`span::reconstruct`] folds the flat stream into
//!   per-request phase breakdowns (queue / prefill / kv-transfer /
//!   decode / stalled) that exactly partition each request's lifetime;
//! * [`chrome`] — [`chrome::chrome_trace_json`] renders the stream as
//!   Chrome trace-event JSON, loadable in
//!   [Perfetto](https://ui.perfetto.dev) with one track per instance;
//! * [`telemetry`] — [`TelemetryRecorder`] samples engine gauges into a
//!   [`pf_metrics::SeriesGroup`] and drives a multi-window SLO
//!   [`BurnRateMonitor`] that emits [`BudgetAlert`]s on severity
//!   escalation.
//!
//! # Example
//!
//! ```
//! use pf_metrics::SimTime;
//! use pf_obs::{reconstruct, Phase, RecordingSink, TraceEvent, TraceSink};
//!
//! let mut sink = RecordingSink::new();
//! sink.event(TraceEvent::Enqueued { at: SimTime::ZERO, instance: 0, request: 1 });
//! sink.event(TraceEvent::Admitted { at: SimTime::from_millis(4), instance: 0, request: 1 });
//! sink.event(TraceEvent::FirstToken { at: SimTime::from_millis(9), instance: 0, request: 1 });
//! sink.event(TraceEvent::Finished {
//!     at: SimTime::from_millis(30), instance: 0, request: 1, sla_ok: true,
//! });
//! let spans = reconstruct(&sink.events);
//! assert!(spans[0].phases_partition_lifetime());
//! assert_eq!(spans[0].time_in(Phase::Queue).as_micros(), 4_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
pub mod event;
pub mod span;
pub mod telemetry;

pub use chrome::{chrome_trace_json, chrome_trace_json_from_spans};
pub use event::{CountingSink, GaugeKind, GaugeSample, Pool, RecordingSink, TraceEvent, TraceSink};
pub use span::{reconstruct, Phase, PhaseSpan, PhaseTotals, RequestSpans, SpanOutcome};
pub use telemetry::{
    AlertWindow, BudgetAlert, BurnRateMonitor, Severity, SloConfig, TelemetryRecorder,
};
