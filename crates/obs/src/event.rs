//! The structured event taxonomy and the [`TraceSink`] trait.
//!
//! Every event is a [`Copy`] value stamped with the emitting engine's
//! simulated clock ([`SimTime`]) and an `instance` id (one serving engine =
//! one instance; disaggregated prefill and decode members get distinct
//! ids). Emission sites pass events through an
//! `Option<&mut dyn TraceSink>`: with `None` the emission compiles down to
//! a branch on a null option — no allocation, no formatting, no clock
//! reads — so the untraced path is bit-identical to a build without
//! tracing.

use pf_metrics::SimTime;

/// Which pool a scaling event applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Pool {
    /// A colocated (single-pool) cluster.
    Colocated,
    /// The disaggregated prefill pool.
    Prefill,
    /// The disaggregated decode pool.
    Decode,
}

impl Pool {
    /// Short lower-case label (`"colocated"`, `"prefill"`, `"decode"`).
    pub fn label(self) -> &'static str {
        match self {
            Pool::Colocated => "colocated",
            Pool::Prefill => "prefill",
            Pool::Decode => "decode",
        }
    }
}

/// Gauge kinds sampled by engines alongside the event stream (see
/// [`TraceSink::gauge`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GaugeKind {
    /// Requests waiting in the admission queue.
    QueueDepth,
    /// KV-pool occupancy as a fraction of capacity.
    KvOccupancy,
    /// Requests in the running batch.
    BatchSize,
    /// Deadline urgency of the queue (Σ `1 / (1 + slack_secs)`).
    SlackPressure,
    /// Running-mean utilization of the shared KV-transfer link (streamed
    /// disagg runs; emitted with the pseudo-instance `u32::MAX` — the
    /// link belongs to the cluster, not to a member).
    LinkUtilization,
}

impl GaugeKind {
    /// Short snake-case label used as a series-name suffix.
    pub fn label(self) -> &'static str {
        match self {
            GaugeKind::QueueDepth => "queue_depth",
            GaugeKind::KvOccupancy => "kv_occupancy",
            GaugeKind::BatchSize => "batch_size",
            GaugeKind::SlackPressure => "slack_pressure",
            GaugeKind::LinkUtilization => "link_utilization",
        }
    }
}

/// One structured lifecycle event.
///
/// Request-scoped variants carry the workload request id; cluster-scoped
/// variants ([`TraceEvent::ScaleUp`], [`TraceEvent::ScaleDown`],
/// [`TraceEvent::Repurposed`]) describe pool membership changes.
///
/// [`TraceEvent::DecodeStep`] is *coalesced*: one event per engine decode
/// iteration carrying the batch size, not one per emitted token —
/// per-token events would dominate the stream a thousand to one and add
/// nothing the span reconstruction needs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// Request entered an instance's admission queue.
    Enqueued {
        /// Event time.
        at: SimTime,
        /// Emitting instance.
        instance: u32,
        /// Request id.
        request: u64,
    },
    /// Request left the queue into the running batch (its prompt KV is
    /// allocated; prefill begins).
    Admitted {
        /// Event time.
        at: SimTime,
        /// Emitting instance.
        instance: u32,
        /// Request id.
        request: u64,
    },
    /// Queued request dropped early under slack-aware scheduling: its
    /// remaining slack fell below the minimum feasible prefill time, so it
    /// was cancelled before burning a prefill pass on a guaranteed miss.
    SlackDropped {
        /// Event time.
        at: SimTime,
        /// Emitting instance.
        instance: u32,
        /// Request id.
        request: u64,
    },
    /// Prefill over the request's (un-cached) prompt started. A swap-in
    /// restore after swap preemption also counts: the readmission
    /// transfer occupies the same lifecycle slot as a recompute prefill.
    PrefillStart {
        /// Event time.
        at: SimTime,
        /// Emitting instance.
        instance: u32,
        /// Request id.
        request: u64,
    },
    /// Prefill over the prompt completed (the request starts decoding).
    PrefillEnd {
        /// Event time.
        at: SimTime,
        /// Emitting instance.
        instance: u32,
        /// Request id.
        request: u64,
    },
    /// First output token ever emitted for this request (the TTFT stamp;
    /// not re-emitted after preemption re-prefills).
    FirstToken {
        /// Event time.
        at: SimTime,
        /// Emitting instance.
        instance: u32,
        /// Request id.
        request: u64,
    },
    /// One decode iteration, coalesced over the whole batch.
    DecodeStep {
        /// Event time (end of the step).
        at: SimTime,
        /// Emitting instance.
        instance: u32,
        /// Requests that emitted a token this step.
        batch: u32,
    },
    /// Request evicted under memory pressure with recompute preemption
    /// (re-queues at the front; pays a re-prefill on readmission).
    Preempted {
        /// Event time.
        at: SimTime,
        /// Emitting instance.
        instance: u32,
        /// Request id.
        request: u64,
    },
    /// Request evicted with swap preemption (KV parked in host memory;
    /// readmission pays a PCIe transfer instead of a recompute).
    Swapped {
        /// Event time.
        at: SimTime,
        /// Emitting instance.
        instance: u32,
        /// Request id.
        request: u64,
    },
    /// Disaggregated KV handoff entered the prefill→decode transfer link
    /// (`at` is when the transfer actually starts moving bytes, after any
    /// wait for a free link slot).
    KvTransferStart {
        /// Event time.
        at: SimTime,
        /// Emitting (prefill) instance.
        instance: u32,
        /// Request id.
        request: u64,
    },
    /// Disaggregated KV handoff completed; the request now belongs to the
    /// decode pool, so `instance` is the *receiving decode* instance.
    KvTransferEnd {
        /// Event time.
        at: SimTime,
        /// Receiving (decode) instance.
        instance: u32,
        /// Request id.
        request: u64,
    },
    /// Request cancelled because its deadline expired while queued.
    TimedOut {
        /// Event time.
        at: SimTime,
        /// Emitting instance.
        instance: u32,
        /// Request id.
        request: u64,
    },
    /// Request completed. `sla_ok` is the per-request SLA verdict
    /// (TTFT and MTPOT within the configured thresholds), making the
    /// event stream a self-contained SLI for burn-rate monitoring.
    Finished {
        /// Event time.
        at: SimTime,
        /// Emitting instance.
        instance: u32,
        /// Request id.
        request: u64,
        /// Whether the request met its SLA.
        sla_ok: bool,
    },
    /// Pool provisioning grew from `from` to `to` members.
    ScaleUp {
        /// Event time.
        at: SimTime,
        /// Affected pool.
        pool: Pool,
        /// Members before.
        from: usize,
        /// Members after.
        to: usize,
    },
    /// Pool provisioning shrank from `from` to `to` members.
    ScaleDown {
        /// Event time.
        at: SimTime,
        /// Affected pool.
        pool: Pool,
        /// Members before.
        from: usize,
        /// Members after.
        to: usize,
    },
    /// A draining prefill member flipped into the decode pool
    /// (cross-pool repurposing).
    Repurposed {
        /// Event time.
        at: SimTime,
        /// The prefill instance that drained.
        from_instance: u32,
        /// The decode instance it became.
        to_instance: u32,
    },
    /// The instance's block-granular prefix store persisted a KV block
    /// (chained block hash). Routers replaying the event stream can
    /// reconstruct exactly which blocks each instance holds.
    KvStored {
        /// Event time.
        at: SimTime,
        /// Emitting instance.
        instance: u32,
        /// Chained block hash of the stored block.
        block: u64,
    },
    /// The instance's block-granular prefix store evicted a KV block.
    KvRemoved {
        /// Event time.
        at: SimTime,
        /// Emitting instance.
        instance: u32,
        /// Chained block hash of the removed block.
        block: u64,
    },
}

impl TraceEvent {
    /// The event's timestamp.
    pub fn at(&self) -> SimTime {
        match *self {
            TraceEvent::Enqueued { at, .. }
            | TraceEvent::Admitted { at, .. }
            | TraceEvent::SlackDropped { at, .. }
            | TraceEvent::PrefillStart { at, .. }
            | TraceEvent::PrefillEnd { at, .. }
            | TraceEvent::FirstToken { at, .. }
            | TraceEvent::DecodeStep { at, .. }
            | TraceEvent::Preempted { at, .. }
            | TraceEvent::Swapped { at, .. }
            | TraceEvent::KvTransferStart { at, .. }
            | TraceEvent::KvTransferEnd { at, .. }
            | TraceEvent::TimedOut { at, .. }
            | TraceEvent::Finished { at, .. }
            | TraceEvent::ScaleUp { at, .. }
            | TraceEvent::ScaleDown { at, .. }
            | TraceEvent::Repurposed { at, .. }
            | TraceEvent::KvStored { at, .. }
            | TraceEvent::KvRemoved { at, .. } => at,
        }
    }

    /// The request id, for request-scoped events.
    pub fn request(&self) -> Option<u64> {
        match *self {
            TraceEvent::Enqueued { request, .. }
            | TraceEvent::Admitted { request, .. }
            | TraceEvent::SlackDropped { request, .. }
            | TraceEvent::PrefillStart { request, .. }
            | TraceEvent::PrefillEnd { request, .. }
            | TraceEvent::FirstToken { request, .. }
            | TraceEvent::Preempted { request, .. }
            | TraceEvent::Swapped { request, .. }
            | TraceEvent::KvTransferStart { request, .. }
            | TraceEvent::KvTransferEnd { request, .. }
            | TraceEvent::TimedOut { request, .. }
            | TraceEvent::Finished { request, .. } => Some(request),
            TraceEvent::DecodeStep { .. }
            | TraceEvent::ScaleUp { .. }
            | TraceEvent::ScaleDown { .. }
            | TraceEvent::Repurposed { .. }
            | TraceEvent::KvStored { .. }
            | TraceEvent::KvRemoved { .. } => None,
        }
    }

    /// The emitting instance, for instance-scoped events.
    pub fn instance(&self) -> Option<u32> {
        match *self {
            TraceEvent::Enqueued { instance, .. }
            | TraceEvent::Admitted { instance, .. }
            | TraceEvent::SlackDropped { instance, .. }
            | TraceEvent::PrefillStart { instance, .. }
            | TraceEvent::PrefillEnd { instance, .. }
            | TraceEvent::FirstToken { instance, .. }
            | TraceEvent::DecodeStep { instance, .. }
            | TraceEvent::Preempted { instance, .. }
            | TraceEvent::Swapped { instance, .. }
            | TraceEvent::KvTransferStart { instance, .. }
            | TraceEvent::KvTransferEnd { instance, .. }
            | TraceEvent::TimedOut { instance, .. }
            | TraceEvent::Finished { instance, .. }
            | TraceEvent::KvStored { instance, .. }
            | TraceEvent::KvRemoved { instance, .. } => Some(instance),
            TraceEvent::ScaleUp { .. } | TraceEvent::ScaleDown { .. } => None,
            TraceEvent::Repurposed { from_instance, .. } => Some(from_instance),
        }
    }

    /// Short kebab-case event name (stable; used in exports).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Enqueued { .. } => "enqueued",
            TraceEvent::Admitted { .. } => "admitted",
            TraceEvent::SlackDropped { .. } => "slack-dropped",
            TraceEvent::PrefillStart { .. } => "prefill-start",
            TraceEvent::PrefillEnd { .. } => "prefill-end",
            TraceEvent::FirstToken { .. } => "first-token",
            TraceEvent::DecodeStep { .. } => "decode-step",
            TraceEvent::Preempted { .. } => "preempted",
            TraceEvent::Swapped { .. } => "swapped",
            TraceEvent::KvTransferStart { .. } => "kv-transfer-start",
            TraceEvent::KvTransferEnd { .. } => "kv-transfer-end",
            TraceEvent::TimedOut { .. } => "timed-out",
            TraceEvent::Finished { .. } => "finished",
            TraceEvent::ScaleUp { .. } => "scale-up",
            TraceEvent::ScaleDown { .. } => "scale-down",
            TraceEvent::Repurposed { .. } => "repurposed",
            TraceEvent::KvStored { .. } => "kv-stored",
            TraceEvent::KvRemoved { .. } => "kv-removed",
        }
    }
}

/// Consumer of the structured event stream.
///
/// Engines call [`TraceSink::event`] at every lifecycle transition and
/// [`TraceSink::gauge`] (default: no-op) at every metrics-recording step.
/// Implementations must not assume globally monotonic timestamps: in
/// multi-instance co-simulation each *instance's* stream is monotonic, but
/// the interleaving across instances follows the engines' tick order.
pub trait TraceSink {
    /// Receives one lifecycle event.
    fn event(&mut self, ev: TraceEvent);

    /// Receives one gauge sample (queue depth, KV occupancy, …). The
    /// default implementation discards it, so event-only sinks stay
    /// one-method implementations.
    fn gauge(&mut self, at: SimTime, instance: u32, kind: GaugeKind, value: f64) {
        let _ = (at, instance, kind, value);
    }
}

/// One gauge observation captured by [`RecordingSink`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GaugeSample {
    /// Sample time.
    pub at: SimTime,
    /// Emitting instance.
    pub instance: u32,
    /// What was measured.
    pub kind: GaugeKind,
    /// Measured value.
    pub value: f64,
}

/// Sink that records the full event and gauge streams in memory — the
/// input to [`crate::span::reconstruct`] and
/// [`crate::chrome::chrome_trace_json`].
#[derive(Debug, Default)]
pub struct RecordingSink {
    /// Every event, in emission order.
    pub events: Vec<TraceEvent>,
    /// Every gauge sample, in emission order.
    pub gauges: Vec<GaugeSample>,
}

impl RecordingSink {
    /// Creates an empty recording sink.
    pub fn new() -> Self {
        RecordingSink::default()
    }
}

impl TraceSink for RecordingSink {
    fn event(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }

    fn gauge(&mut self, at: SimTime, instance: u32, kind: GaugeKind, value: f64) {
        self.gauges.push(GaugeSample {
            at,
            instance,
            kind,
            value,
        });
    }
}

/// Sink that only counts — the cheapest possible real sink, used by the
/// perf baseline to measure the intrinsic cost of having tracing *on*.
#[derive(Debug, Default)]
pub struct CountingSink {
    /// Events received.
    pub events: u64,
    /// Gauge samples received.
    pub gauges: u64,
}

impl CountingSink {
    /// Creates a zeroed counting sink.
    pub fn new() -> Self {
        CountingSink::default()
    }
}

impl TraceSink for CountingSink {
    fn event(&mut self, _ev: TraceEvent) {
        self.events += 1;
    }

    fn gauge(&mut self, _at: SimTime, _instance: u32, _kind: GaugeKind, _value: f64) {
        self.gauges += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_every_variant() {
        let t = SimTime::from_secs(1);
        let request_scoped = [
            TraceEvent::Enqueued {
                at: t,
                instance: 2,
                request: 7,
            },
            TraceEvent::Finished {
                at: t,
                instance: 2,
                request: 7,
                sla_ok: true,
            },
            TraceEvent::KvTransferEnd {
                at: t,
                instance: 2,
                request: 7,
            },
        ];
        for ev in request_scoped {
            assert_eq!(ev.at(), t);
            assert_eq!(ev.request(), Some(7));
            assert_eq!(ev.instance(), Some(2));
            assert!(!ev.name().is_empty());
        }
        let scale = TraceEvent::ScaleUp {
            at: t,
            pool: Pool::Decode,
            from: 1,
            to: 2,
        };
        assert_eq!(scale.request(), None);
        assert_eq!(scale.instance(), None);
        assert_eq!(scale.name(), "scale-up");
        let step = TraceEvent::DecodeStep {
            at: t,
            instance: 3,
            batch: 8,
        };
        assert_eq!(step.request(), None);
        assert_eq!(step.instance(), Some(3));
    }

    #[test]
    fn recording_sink_captures_both_streams() {
        let mut sink = RecordingSink::new();
        sink.event(TraceEvent::Enqueued {
            at: SimTime::ZERO,
            instance: 0,
            request: 1,
        });
        sink.gauge(SimTime::ZERO, 0, GaugeKind::QueueDepth, 3.0);
        assert_eq!(sink.events.len(), 1);
        assert_eq!(sink.gauges.len(), 1);
        assert_eq!(sink.gauges[0].kind.label(), "queue_depth");
    }

    #[test]
    fn counting_sink_counts() {
        let mut sink = CountingSink::new();
        for i in 0..5 {
            sink.event(TraceEvent::DecodeStep {
                at: SimTime::from_micros(i),
                instance: 0,
                batch: 1,
            });
        }
        sink.gauge(SimTime::ZERO, 0, GaugeKind::BatchSize, 1.0);
        assert_eq!(sink.events, 5);
        assert_eq!(sink.gauges, 1);
    }

    #[test]
    fn default_gauge_is_noop() {
        struct EventsOnly(u64);
        impl TraceSink for EventsOnly {
            fn event(&mut self, _ev: TraceEvent) {
                self.0 += 1;
            }
        }
        let mut sink = EventsOnly(0);
        sink.gauge(SimTime::ZERO, 0, GaugeKind::KvOccupancy, 0.5);
        assert_eq!(sink.0, 0);
    }

    #[test]
    fn pool_labels() {
        assert_eq!(Pool::Colocated.label(), "colocated");
        assert_eq!(Pool::Prefill.label(), "prefill");
        assert_eq!(Pool::Decode.label(), "decode");
    }
}
