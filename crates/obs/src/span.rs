//! Span reconstruction: folding the flat event stream back into
//! per-request phase breakdowns.
//!
//! A request's lifetime is partitioned into contiguous [`Phase`] spans:
//!
//! ```text
//! enqueued ─ queue ─ admitted ─ prefill ─ first token ─ decode ─ finished
//!               ▲                                          │
//!               └────────────── preempted ◀────────────────┘
//! ```
//!
//! with a `kv-transfer` phase between prefill and decode in disaggregated
//! runs, and `stalled` covering time the request is owned by the system
//! but no stage is working on it (waiting for a free KV-transfer link
//! slot). The reconstruction is *order-stable*: markers are canonically
//! re-sorted by `(time, kind)` first, so any permutation of the input
//! event slice yields identical spans.

use std::collections::BTreeMap;

use pf_metrics::{SimDuration, SimTime};

use crate::event::TraceEvent;

/// What a request was doing during one span of its lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Waiting in an admission queue (including re-queue after
    /// preemption).
    Queue,
    /// Prompt prefill in progress (or a swap-in restore).
    Prefill,
    /// KV handoff moving over the prefill→decode link.
    KvTransfer,
    /// Emitting output tokens (includes decode-admission wait after a KV
    /// transfer lands — the decode pool owns the request from then on).
    Decode,
    /// Owned by the system but no stage working on it (e.g. waiting for a
    /// free KV-transfer link slot).
    Stalled,
}

impl Phase {
    /// Short kebab-case label (stable; used in exports).
    pub fn label(self) -> &'static str {
        match self {
            Phase::Queue => "queue",
            Phase::Prefill => "prefill",
            Phase::KvTransfer => "kv-transfer",
            Phase::Decode => "decode",
            Phase::Stalled => "stalled",
        }
    }

    /// All phases, in display order.
    pub const ALL: [Phase; 5] = [
        Phase::Queue,
        Phase::Prefill,
        Phase::KvTransfer,
        Phase::Decode,
        Phase::Stalled,
    ];
}

/// One contiguous span of a request's lifetime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseSpan {
    /// What the request was doing.
    pub phase: Phase,
    /// Span start.
    pub start: SimTime,
    /// Span end (exclusive; equals the next span's start).
    pub end: SimTime,
    /// Instance that owned the request during this span.
    pub instance: u32,
}

impl PhaseSpan {
    /// Span length.
    pub fn duration(&self) -> SimDuration {
        self.end.saturating_since(self.start)
    }
}

/// How a request's trace ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Completed; `sla_ok` is the per-request SLA verdict.
    Finished {
        /// Whether the request met its SLA.
        sla_ok: bool,
    },
    /// Cancelled past its deadline while queued.
    TimedOut,
    /// Early-dropped by slack-aware scheduling.
    SlackDropped,
    /// The trace ended (simulation horizon) with the request still in
    /// flight.
    Incomplete,
}

/// A request's full reconstructed lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpans {
    /// Request id.
    pub request: u64,
    /// Instance the request was first enqueued on.
    pub instance: u32,
    /// When the request entered the system.
    pub enqueued: SimTime,
    /// When its trace ended (finish, cancellation, or last marker for
    /// incomplete traces).
    pub ended: SimTime,
    /// How the trace ended.
    pub outcome: SpanOutcome,
    /// Contiguous phases partitioning `[enqueued, ended]`.
    pub phases: Vec<PhaseSpan>,
}

impl RequestSpans {
    /// Total time in the given phase.
    pub fn time_in(&self, phase: Phase) -> SimDuration {
        self.phases
            .iter()
            .filter(|s| s.phase == phase)
            .map(PhaseSpan::duration)
            .sum()
    }

    /// Whether the phases exactly partition `[enqueued, ended]`:
    /// contiguous, non-overlapping, non-empty, covering the whole
    /// lifetime. (Zero-length lifetimes — e.g. dropped at arrival — have
    /// no phases.)
    pub fn phases_partition_lifetime(&self) -> bool {
        if self.phases.is_empty() {
            return self.enqueued == self.ended;
        }
        let mut cursor = self.enqueued;
        for span in &self.phases {
            if span.start != cursor || span.end <= span.start {
                return false;
            }
            cursor = span.end;
        }
        cursor == self.ended
    }
}

/// Marker kinds in canonical same-timestamp order. The rank resolves ties
/// so reconstruction is independent of the input event order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Marker {
    Enqueued,
    Admitted,
    PrefillStart,
    PrefillEnd,
    FirstToken,
    KvTransferStart,
    KvTransferEnd,
    Preempted,
    Swapped,
    Terminal(TerminalKind),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum TerminalKind {
    Finished { sla_ok: bool },
    TimedOut,
    SlackDropped,
}

/// Folds an event stream into per-request phase breakdowns, sorted by
/// request id. Non-request events (decode steps, scaling, repurposing)
/// are ignored. Input order does not matter: markers are re-sorted by
/// `(time, canonical kind rank)` per request before the walk.
pub fn reconstruct(events: &[TraceEvent]) -> Vec<RequestSpans> {
    let mut per_request: BTreeMap<u64, Vec<(SimTime, Marker, u32)>> = BTreeMap::new();
    for ev in events {
        let marker = match *ev {
            TraceEvent::Enqueued { .. } => Marker::Enqueued,
            TraceEvent::Admitted { .. } => Marker::Admitted,
            TraceEvent::PrefillStart { .. } => Marker::PrefillStart,
            TraceEvent::PrefillEnd { .. } => Marker::PrefillEnd,
            TraceEvent::FirstToken { .. } => Marker::FirstToken,
            TraceEvent::KvTransferStart { .. } => Marker::KvTransferStart,
            TraceEvent::KvTransferEnd { .. } => Marker::KvTransferEnd,
            TraceEvent::Preempted { .. } => Marker::Preempted,
            TraceEvent::Swapped { .. } => Marker::Swapped,
            TraceEvent::Finished { sla_ok, .. } => {
                Marker::Terminal(TerminalKind::Finished { sla_ok })
            }
            TraceEvent::TimedOut { .. } => Marker::Terminal(TerminalKind::TimedOut),
            TraceEvent::SlackDropped { .. } => Marker::Terminal(TerminalKind::SlackDropped),
            TraceEvent::DecodeStep { .. }
            | TraceEvent::ScaleUp { .. }
            | TraceEvent::ScaleDown { .. }
            | TraceEvent::Repurposed { .. }
            | TraceEvent::KvStored { .. }
            | TraceEvent::KvRemoved { .. } => continue,
        };
        let (request, instance) = match (ev.request(), ev.instance()) {
            (Some(r), Some(i)) => (r, i),
            _ => continue,
        };
        per_request
            .entry(request)
            .or_default()
            .push((ev.at(), marker, instance));
    }
    per_request
        .into_iter()
        .map(|(request, mut markers)| {
            markers.sort_by_key(|&(at, marker, _)| (at, marker));
            fold_markers(request, &markers)
        })
        .collect()
}

/// Walks one request's time-sorted markers, labelling each inter-marker
/// segment by the state the earlier marker put the request in. One-marker
/// lookahead distinguishes post-prefill decoding from waiting for a KV
/// link slot.
fn fold_markers(request: u64, markers: &[(SimTime, Marker, u32)]) -> RequestSpans {
    debug_assert!(!markers.is_empty());
    let (enqueued, _, first_instance) = markers[0];
    let (ended, last_marker, _) = *markers.last().expect("non-empty");
    let outcome = match last_marker {
        Marker::Terminal(TerminalKind::Finished { sla_ok }) => SpanOutcome::Finished { sla_ok },
        Marker::Terminal(TerminalKind::TimedOut) => SpanOutcome::TimedOut,
        Marker::Terminal(TerminalKind::SlackDropped) => SpanOutcome::SlackDropped,
        _ => SpanOutcome::Incomplete,
    };
    let mut phases: Vec<PhaseSpan> = Vec::new();
    for (i, &(at, marker, instance)) in markers.iter().enumerate() {
        let Some(&(next_at, next_marker, _)) = markers.get(i + 1) else {
            break;
        };
        let phase = match marker {
            Marker::Enqueued | Marker::Preempted | Marker::Swapped => Phase::Queue,
            Marker::Admitted | Marker::PrefillStart => Phase::Prefill,
            // After prefill the request is decoding — unless the next
            // thing that happens is a KV handoff, in which case the gap
            // is the wait for a free link slot; under layer streaming the
            // transfer started *during* prefill, so a transfer end right
            // after the first token is the tail chunks still in flight.
            Marker::PrefillEnd | Marker::FirstToken => match next_marker {
                Marker::KvTransferStart => Phase::Stalled,
                Marker::KvTransferEnd => Phase::KvTransfer,
                _ => Phase::Decode,
            },
            // A streamed transfer starts mid-pass: until the prefill
            // finishes, the request is still (also) prefilling — the
            // KvTransfer phase covers only the post-prefill tail.
            Marker::KvTransferStart => {
                if matches!(next_marker, Marker::PrefillEnd | Marker::FirstToken) {
                    Phase::Prefill
                } else {
                    Phase::KvTransfer
                }
            }
            Marker::KvTransferEnd => Phase::Decode,
            // A terminal marker before the last one (duplicate terminals
            // never happen from the engines); label defensively.
            Marker::Terminal(_) => Phase::Stalled,
        };
        if next_at <= at {
            continue; // Zero-length segment.
        }
        match phases.last_mut() {
            // Merge consecutive same-phase same-instance segments.
            Some(prev) if prev.phase == phase && prev.instance == instance => {
                prev.end = next_at;
            }
            _ => phases.push(PhaseSpan {
                phase,
                start: at,
                end: next_at,
                instance,
            }),
        }
    }
    RequestSpans {
        request,
        instance: first_instance,
        enqueued,
        ended,
        outcome,
        phases,
    }
}

/// Per-phase totals across many requests (for summary tables).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PhaseTotals {
    /// Total time per phase, indexed as [`Phase::ALL`].
    pub totals: [SimDuration; 5],
    /// Requests aggregated.
    pub requests: usize,
}

impl PhaseTotals {
    /// Sums phase time over `spans`.
    pub fn aggregate(spans: &[RequestSpans]) -> Self {
        let mut out = PhaseTotals {
            requests: spans.len(),
            ..Default::default()
        };
        for span in spans {
            for (slot, phase) in out.totals.iter_mut().zip(Phase::ALL) {
                *slot += span.time_in(phase);
            }
        }
        out
    }

    /// Total time in the given phase.
    pub fn time_in(&self, phase: Phase) -> SimDuration {
        let idx = Phase::ALL.iter().position(|&p| p == phase).expect("known");
        self.totals[idx]
    }

    /// Mean time per request in the given phase, in seconds.
    pub fn mean_secs(&self, phase: Phase) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.time_in(phase).as_secs_f64() / self.requests as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn simple_lifetime() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Enqueued {
                at: t(0),
                instance: 0,
                request: 1,
            },
            TraceEvent::Admitted {
                at: t(10),
                instance: 0,
                request: 1,
            },
            TraceEvent::PrefillStart {
                at: t(10),
                instance: 0,
                request: 1,
            },
            TraceEvent::PrefillEnd {
                at: t(40),
                instance: 0,
                request: 1,
            },
            TraceEvent::FirstToken {
                at: t(40),
                instance: 0,
                request: 1,
            },
            TraceEvent::Finished {
                at: t(100),
                instance: 0,
                request: 1,
                sla_ok: true,
            },
        ]
    }

    #[test]
    fn simple_lifetime_partitions() {
        let spans = reconstruct(&simple_lifetime());
        assert_eq!(spans.len(), 1);
        let s = &spans[0];
        assert_eq!(s.request, 1);
        assert_eq!(s.outcome, SpanOutcome::Finished { sla_ok: true });
        assert!(s.phases_partition_lifetime());
        assert_eq!(s.time_in(Phase::Queue), SimDuration::from_millis(10));
        assert_eq!(s.time_in(Phase::Prefill), SimDuration::from_millis(30));
        assert_eq!(s.time_in(Phase::Decode), SimDuration::from_millis(60));
        assert_eq!(s.time_in(Phase::Stalled), SimDuration::ZERO);
    }

    #[test]
    fn reconstruction_is_order_stable() {
        let mut events = simple_lifetime();
        events.reverse();
        assert_eq!(reconstruct(&events), reconstruct(&simple_lifetime()));
    }

    #[test]
    fn disagg_lifetime_includes_transfer_and_stall() {
        let events = vec![
            TraceEvent::Enqueued {
                at: t(0),
                instance: 0,
                request: 5,
            },
            TraceEvent::Admitted {
                at: t(5),
                instance: 0,
                request: 5,
            },
            TraceEvent::PrefillEnd {
                at: t(20),
                instance: 0,
                request: 5,
            },
            TraceEvent::FirstToken {
                at: t(20),
                instance: 0,
                request: 5,
            },
            // Link slot only frees at 30ms: 20→30 is stalled.
            TraceEvent::KvTransferStart {
                at: t(30),
                instance: 0,
                request: 5,
            },
            TraceEvent::KvTransferEnd {
                at: t(35),
                instance: 3,
                request: 5,
            },
            TraceEvent::Finished {
                at: t(90),
                instance: 3,
                request: 5,
                sla_ok: false,
            },
        ];
        let spans = reconstruct(&events);
        let s = &spans[0];
        assert!(s.phases_partition_lifetime());
        assert_eq!(s.time_in(Phase::Stalled), SimDuration::from_millis(10));
        assert_eq!(s.time_in(Phase::KvTransfer), SimDuration::from_millis(5));
        assert_eq!(s.time_in(Phase::Decode), SimDuration::from_millis(55));
        // Decode happened on the receiving decode instance's track.
        let decode = s.phases.iter().find(|p| p.phase == Phase::Decode).unwrap();
        assert_eq!(decode.instance, 3);
    }

    #[test]
    fn preemption_returns_to_queue() {
        let events = vec![
            TraceEvent::Enqueued {
                at: t(0),
                instance: 0,
                request: 9,
            },
            TraceEvent::Admitted {
                at: t(1),
                instance: 0,
                request: 9,
            },
            TraceEvent::PrefillEnd {
                at: t(2),
                instance: 0,
                request: 9,
            },
            TraceEvent::FirstToken {
                at: t(2),
                instance: 0,
                request: 9,
            },
            TraceEvent::Preempted {
                at: t(10),
                instance: 0,
                request: 9,
            },
            TraceEvent::Admitted {
                at: t(15),
                instance: 0,
                request: 9,
            },
            TraceEvent::PrefillEnd {
                at: t(18),
                instance: 0,
                request: 9,
            },
            TraceEvent::Finished {
                at: t(30),
                instance: 0,
                request: 9,
                sla_ok: true,
            },
        ];
        let s = &reconstruct(&events)[0];
        assert!(s.phases_partition_lifetime());
        // 0→1 queue, 10→15 re-queue after preemption.
        assert_eq!(s.time_in(Phase::Queue), SimDuration::from_millis(6));
        // 1→2 prefill, 15→18 re-prefill.
        assert_eq!(s.time_in(Phase::Prefill), SimDuration::from_millis(4));
        assert_eq!(s.time_in(Phase::Decode), SimDuration::from_millis(20));
    }

    #[test]
    fn timed_out_while_queued() {
        let events = vec![
            TraceEvent::Enqueued {
                at: t(0),
                instance: 1,
                request: 2,
            },
            TraceEvent::TimedOut {
                at: t(50),
                instance: 1,
                request: 2,
            },
        ];
        let s = &reconstruct(&events)[0];
        assert_eq!(s.outcome, SpanOutcome::TimedOut);
        assert!(s.phases_partition_lifetime());
        assert_eq!(s.time_in(Phase::Queue), SimDuration::from_millis(50));
    }

    #[test]
    fn incomplete_trace_is_flagged() {
        let events = vec![
            TraceEvent::Enqueued {
                at: t(0),
                instance: 0,
                request: 4,
            },
            TraceEvent::Admitted {
                at: t(3),
                instance: 0,
                request: 4,
            },
        ];
        let s = &reconstruct(&events)[0];
        assert_eq!(s.outcome, SpanOutcome::Incomplete);
        assert!(s.phases_partition_lifetime());
    }

    #[test]
    fn totals_aggregate_across_requests() {
        let mut events = simple_lifetime();
        events.push(TraceEvent::Enqueued {
            at: t(0),
            instance: 0,
            request: 2,
        });
        events.push(TraceEvent::TimedOut {
            at: t(20),
            instance: 0,
            request: 2,
        });
        let spans = reconstruct(&events);
        let totals = PhaseTotals::aggregate(&spans);
        assert_eq!(totals.requests, 2);
        assert_eq!(totals.time_in(Phase::Queue), SimDuration::from_millis(30));
        assert!((totals.mean_secs(Phase::Queue) - 0.015).abs() < 1e-12);
    }
}
