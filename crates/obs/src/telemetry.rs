//! Live telemetry: gauge recording and multi-window SLO burn-rate
//! monitoring.
//!
//! [`TelemetryRecorder`] is a [`TraceSink`] that (a) samples engine
//! gauges into a [`pf_metrics::SeriesGroup`] (one named series per
//! instance × gauge kind) and (b) feeds every request outcome into a
//! [`BurnRateMonitor`] — the SRE-style multi-window error-budget monitor
//! over the SLO attainment SLI. Finished requests count as good when they
//! met their SLA; SLA misses, timeouts and slack drops consume error
//! budget.
//!
//! # Burn-rate model
//!
//! With SLO target `target` over a period `P` (production: 30 days; here
//! logically scaled to the simulated horizon), the error budget is
//! `1 − target`. Over a lookback window `W`:
//!
//! ```text
//! burn_rate(W)       = error_rate(W) / (1 − target)
//! budget_consumed(W) = burn_rate(W) × W / P
//! ```
//!
//! A burn rate of 1 spends exactly the whole budget over the period.
//! Three windows are watched — short (`P/30`, the "1 day" window),
//! medium (`7P/30`, the "7 day" window) and long (`P` itself) — with
//! severities:
//!
//! * [`Severity::Critical`] — more than 50% of the budget consumed
//!   within the *short* window (page immediately);
//! * [`Severity::High`] — more than 25% consumed within the *medium*
//!   window (page);
//! * [`Severity::Medium`] — long-window burn rate above 1 (trending to
//!   exhaust the budget; ticket);
//! * [`Severity::Low`] — long-window burn rate above 0.1 (minor
//!   deviation worth a look).
//!
//! [`BudgetAlert`]s are emitted on severity *escalation* only: the
//! monitor re-arms when severity falls back below the previously alerted
//! level, so a sustained violation produces one alert per escalation
//! step, not one per request.

use std::collections::VecDeque;

use pf_metrics::{SeriesGroup, SimDuration, SimTime};

use crate::event::{GaugeKind, TraceEvent, TraceSink};

/// SLO definition the burn-rate monitor watches.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloConfig {
    /// Attainment target in `(0, 1)`, e.g. `0.99`.
    pub target: f64,
    /// The SLO period (production: 30 days; simulations pass their
    /// horizon).
    pub period: SimDuration,
}

impl SloConfig {
    /// Creates an SLO config.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not in `(0, 1)` or `period` is zero.
    pub fn new(target: f64, period: SimDuration) -> Self {
        assert!(
            target > 0.0 && target < 1.0,
            "SLO target {target} outside (0, 1)"
        );
        assert!(!period.is_zero(), "SLO period must be positive");
        SloConfig { target, period }
    }

    /// The short ("1 day") window: `period / 30`.
    pub fn short_window(&self) -> SimDuration {
        SimDuration::from_micros((self.period.as_micros() / 30).max(1))
    }

    /// The medium ("7 day") window: `7 × period / 30`.
    pub fn medium_window(&self) -> SimDuration {
        SimDuration::from_micros((self.period.as_micros() * 7 / 30).max(1))
    }

    /// The error budget: `1 − target`.
    pub fn budget(&self) -> f64 {
        1.0 - self.target
    }
}

/// Alert severity, ordered from least to most urgent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Minor deviation: long-window burn rate above 0.1.
    Low,
    /// Trending: long-window burn rate above 1.
    Medium,
    /// >25% of the error budget consumed within the medium window.
    High,
    /// >50% of the error budget consumed within the short window.
    Critical,
}

impl Severity {
    /// Short label (`"low"`…`"critical"`).
    pub fn label(self) -> &'static str {
        match self {
            Severity::Low => "low",
            Severity::Medium => "medium",
            Severity::High => "high",
            Severity::Critical => "critical",
        }
    }
}

/// Which lookback window triggered an alert.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlertWindow {
    /// `period / 30`.
    Short,
    /// `7 × period / 30`.
    Medium,
    /// The full period.
    Long,
}

impl AlertWindow {
    /// Short label (`"short"`, `"medium"`, `"long"`).
    pub fn label(self) -> &'static str {
        match self {
            AlertWindow::Short => "short",
            AlertWindow::Medium => "medium",
            AlertWindow::Long => "long",
        }
    }
}

/// One budget alert emitted by [`BurnRateMonitor`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BudgetAlert {
    /// When the severity escalated.
    pub at: SimTime,
    /// New severity.
    pub severity: Severity,
    /// The window whose condition fired.
    pub window: AlertWindow,
    /// Burn rate over that window.
    pub burn_rate: f64,
    /// Fraction of the period's error budget that window's errors
    /// consumed.
    pub budget_consumed: f64,
}

/// Sliding-window good/bad counter.
#[derive(Debug)]
struct WindowCounter {
    window: SimDuration,
    samples: VecDeque<(SimTime, bool)>,
    total: u64,
    errors: u64,
}

impl WindowCounter {
    fn new(window: SimDuration) -> Self {
        WindowCounter {
            window,
            samples: VecDeque::new(),
            total: 0,
            errors: 0,
        }
    }

    fn observe(&mut self, at: SimTime, ok: bool) {
        self.samples.push_back((at, ok));
        self.total += 1;
        if !ok {
            self.errors += 1;
        }
        let cutoff = at.saturating_since(SimTime::ZERO) - self.window;
        let cutoff = SimTime::ZERO + cutoff;
        while let Some(&(t, sample_ok)) = self.samples.front() {
            if t >= cutoff {
                break;
            }
            self.samples.pop_front();
            self.total -= 1;
            if !sample_ok {
                self.errors -= 1;
            }
        }
    }

    fn error_rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.errors as f64 / self.total as f64
        }
    }
}

/// Multi-window burn-rate monitor over the SLO attainment SLI (see the
/// module docs for the model).
#[derive(Debug)]
pub struct BurnRateMonitor {
    config: SloConfig,
    short: WindowCounter,
    medium: WindowCounter,
    long: WindowCounter,
    /// Minimum samples in a window before its condition may fire
    /// (suppresses noise from the first few requests).
    min_samples: u64,
    armed_below: Option<Severity>,
    alerts: Vec<BudgetAlert>,
}

impl BurnRateMonitor {
    /// Creates a monitor for the given SLO with the default noise floor
    /// (20 samples per window).
    pub fn new(config: SloConfig) -> Self {
        BurnRateMonitor {
            short: WindowCounter::new(config.short_window()),
            medium: WindowCounter::new(config.medium_window()),
            long: WindowCounter::new(config.period),
            config,
            min_samples: 20,
            armed_below: None,
            alerts: Vec::new(),
        }
    }

    /// Overrides the minimum per-window sample count before alerting.
    pub fn with_min_samples(mut self, min_samples: u64) -> Self {
        self.min_samples = min_samples;
        self
    }

    /// Feeds one request outcome (`ok` = met its SLA).
    pub fn observe(&mut self, at: SimTime, ok: bool) {
        self.short.observe(at, ok);
        self.medium.observe(at, ok);
        self.long.observe(at, ok);
        self.evaluate(at);
    }

    /// Burn rate over the given window right now.
    pub fn burn_rate(&self, window: AlertWindow) -> f64 {
        self.counter(window).error_rate() / self.config.budget()
    }

    /// Fraction of the period's budget the given window's errors consumed.
    pub fn budget_consumed(&self, window: AlertWindow) -> f64 {
        let w = self.counter(window).window.as_micros() as f64;
        self.burn_rate(window) * w / self.config.period.as_micros() as f64
    }

    /// Alerts emitted so far, in emission order.
    pub fn alerts(&self) -> &[BudgetAlert] {
        &self.alerts
    }

    /// The SLO this monitor watches.
    pub fn config(&self) -> SloConfig {
        self.config
    }

    fn counter(&self, window: AlertWindow) -> &WindowCounter {
        match window {
            AlertWindow::Short => &self.short,
            AlertWindow::Medium => &self.medium,
            AlertWindow::Long => &self.long,
        }
    }

    fn current_condition(&self) -> Option<(Severity, AlertWindow)> {
        if self.short.total >= self.min_samples && self.budget_consumed(AlertWindow::Short) > 0.5 {
            return Some((Severity::Critical, AlertWindow::Short));
        }
        if self.medium.total >= self.min_samples && self.budget_consumed(AlertWindow::Medium) > 0.25
        {
            return Some((Severity::High, AlertWindow::Medium));
        }
        if self.long.total >= self.min_samples {
            let burn = self.burn_rate(AlertWindow::Long);
            if burn > 1.0 {
                return Some((Severity::Medium, AlertWindow::Long));
            }
            if burn > 0.1 {
                return Some((Severity::Low, AlertWindow::Long));
            }
        }
        None
    }

    fn evaluate(&mut self, at: SimTime) {
        match self.current_condition() {
            Some((severity, window)) => {
                let escalated = match self.armed_below {
                    None => true,
                    Some(armed) => severity > armed,
                };
                if escalated {
                    self.alerts.push(BudgetAlert {
                        at,
                        severity,
                        window,
                        burn_rate: self.burn_rate(window),
                        budget_consumed: self.budget_consumed(window),
                    });
                }
                self.armed_below = Some(severity);
            }
            None => self.armed_below = None,
        }
    }
}

/// A [`TraceSink`] recording gauges into a [`SeriesGroup`] and feeding
/// request outcomes into a [`BurnRateMonitor`].
#[derive(Debug)]
pub struct TelemetryRecorder {
    gauges: SeriesGroup,
    monitor: BurnRateMonitor,
    events_seen: u64,
}

impl TelemetryRecorder {
    /// Creates a recorder watching the given SLO.
    pub fn new(slo: SloConfig) -> Self {
        TelemetryRecorder {
            gauges: SeriesGroup::new(),
            monitor: BurnRateMonitor::new(slo),
            events_seen: 0,
        }
    }

    /// Overrides the monitor's minimum per-window sample count.
    pub fn with_min_samples(mut self, min_samples: u64) -> Self {
        self.monitor = self.monitor.with_min_samples(min_samples);
        self
    }

    /// The recorded gauge series, named `i{instance}.{gauge}` (e.g.
    /// `i0.queue_depth`).
    pub fn gauges(&self) -> &SeriesGroup {
        &self.gauges
    }

    /// The burn-rate monitor (alerts, current burn rates).
    pub fn monitor(&self) -> &BurnRateMonitor {
        &self.monitor
    }

    /// Events received (all kinds).
    pub fn events_seen(&self) -> u64 {
        self.events_seen
    }
}

impl TraceSink for TelemetryRecorder {
    fn event(&mut self, ev: TraceEvent) {
        self.events_seen += 1;
        match ev {
            TraceEvent::Finished { at, sla_ok, .. } => self.monitor.observe(at, sla_ok),
            TraceEvent::TimedOut { at, .. } | TraceEvent::SlackDropped { at, .. } => {
                self.monitor.observe(at, false)
            }
            _ => {}
        }
    }

    fn gauge(&mut self, at: SimTime, instance: u32, kind: GaugeKind, value: f64) {
        self.gauges
            .record(&format!("i{instance}.{}", kind.label()), at, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slo() -> SloConfig {
        // Period 30s → short window 1s, medium 7s.
        SloConfig::new(0.9, SimDuration::from_secs(30))
    }

    #[test]
    fn windows_scale_with_period() {
        let c = slo();
        assert_eq!(c.short_window(), SimDuration::from_secs(1));
        assert_eq!(c.medium_window(), SimDuration::from_secs(7));
        assert!((c.budget() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn all_good_never_alerts() {
        let mut m = BurnRateMonitor::new(slo()).with_min_samples(1);
        for i in 0..100 {
            m.observe(SimTime::from_millis(i * 100), true);
        }
        assert!(m.alerts().is_empty());
        assert_eq!(m.burn_rate(AlertWindow::Long), 0.0);
    }

    #[test]
    fn total_failure_escalates_to_critical_once() {
        let mut m = BurnRateMonitor::new(slo()).with_min_samples(5);
        for i in 0..50 {
            m.observe(SimTime::from_millis(i * 10), false);
        }
        let alerts = m.alerts();
        assert!(!alerts.is_empty());
        // 100% errors, budget 10% → burn rate 10 everywhere. The short
        // window consumes 10/30 ≈ 0.33 of the budget (< 0.5, no page),
        // but the medium window consumes 10·7/30 ≈ 2.3 (> 0.25) → High.
        assert!(alerts.iter().all(|a| a.severity >= Severity::Medium));
        // Escalation-only: one alert per severity step, not per sample.
        assert!(alerts.len() <= 2);
        assert!(m.burn_rate(AlertWindow::Long) > 1.0);
    }

    #[test]
    fn short_window_collapse_pages_critical() {
        // Tight target: budget 2%; a sudden full outage consumes >50% of
        // the budget within the short window.
        let config = SloConfig::new(0.98, SimDuration::from_secs(30));
        let mut m = BurnRateMonitor::new(config).with_min_samples(10);
        // Healthy long history…
        for i in 0..200 {
            m.observe(SimTime::from_millis(i * 100), true);
        }
        assert!(m.alerts().is_empty());
        // …then everything fails inside one short window.
        for i in 0..30 {
            m.observe(SimTime::from_millis(20_000 + i * 20), false);
        }
        assert!(m
            .alerts()
            .iter()
            .any(|a| a.severity == Severity::Critical && a.window == AlertWindow::Short));
    }

    #[test]
    fn rearms_after_recovery() {
        let mut m = BurnRateMonitor::new(slo()).with_min_samples(2);
        for i in 0..20 {
            m.observe(SimTime::from_millis(i * 10), false);
        }
        let after_first = m.alerts().len();
        assert!(after_first >= 1);
        // Long healthy stretch clears every window.
        for i in 0..2000 {
            m.observe(SimTime::from_millis(1000 + i * 100), true);
        }
        assert_eq!(m.alerts().len(), after_first);
        // A new burst re-alerts.
        for i in 0..50 {
            m.observe(SimTime::from_millis(300_000 + i * 10), false);
        }
        assert!(m.alerts().len() > after_first);
    }

    #[test]
    fn recorder_routes_outcomes_and_gauges() {
        let mut rec = TelemetryRecorder::new(slo()).with_min_samples(1);
        rec.event(TraceEvent::Finished {
            at: SimTime::from_secs(1),
            instance: 0,
            request: 1,
            sla_ok: true,
        });
        rec.event(TraceEvent::TimedOut {
            at: SimTime::from_secs(2),
            instance: 0,
            request: 2,
        });
        rec.event(TraceEvent::DecodeStep {
            at: SimTime::from_secs(2),
            instance: 0,
            batch: 4,
        });
        rec.gauge(SimTime::from_secs(1), 0, GaugeKind::QueueDepth, 5.0);
        rec.gauge(SimTime::from_secs(2), 1, GaugeKind::QueueDepth, 2.0);
        assert_eq!(rec.events_seen(), 3);
        assert_eq!(rec.gauges().len(), 2);
        assert!(rec.gauges().get("i0.queue_depth").is_some());
        assert!(rec.gauges().get("i1.queue_depth").is_some());
        // One good, one bad → long-window error rate 0.5, burn rate 5.
        assert!((rec.monitor().burn_rate(AlertWindow::Long) - 5.0).abs() < 1e-9);
    }
}
