//! The scaling policy: SLA targets plus hysteresis → replica counts.
//!
//! Given the interpolator's TTFT/TPOT estimates for candidate fleet sizes,
//! the policy picks the smallest replica count whose *predicted* latency
//! sits inside the SLA with a safety margin. Asymmetric hysteresis keeps
//! it from flapping on noisy load:
//!
//! * **scale up** happens immediately, straight to the required count —
//!   under-provisioning burns SLA, and new capacity already pays a
//!   warm-up delay;
//! * **scale down** requires the *smaller* fleet to satisfy a stricter
//!   margin for several consecutive intervals, and then releases one
//!   replica at a time.

use pf_metrics::SlaSpec;

use crate::interp::PerfEstimate;

/// Scaling-policy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PolicyConfig {
    /// Smallest fleet the policy will ever target (≥ 1).
    pub min_replicas: usize,
    /// Largest fleet the policy will ever target.
    pub max_replicas: usize,
    /// Fraction of the SLA budget predicted latency may use before a
    /// size counts as *sufficient* for scale-up purposes (e.g. 0.8:
    /// predicted TTFT must stay below 80% of the limit).
    pub headroom: f64,
    /// Stricter fraction the smaller fleet must satisfy before scaling
    /// down (must be ≤ `headroom`).
    pub scale_down_headroom: f64,
    /// Consecutive qualifying intervals required before releasing a
    /// replica.
    pub scale_down_patience: u32,
}

impl PolicyConfig {
    /// Bounds-only constructor with the default margins (headroom 0.8,
    /// scale-down headroom 0.5, patience 3).
    ///
    /// # Panics
    ///
    /// Panics if `min == 0` or `min > max`.
    pub fn bounded(min_replicas: usize, max_replicas: usize) -> Self {
        let config = PolicyConfig {
            min_replicas,
            max_replicas,
            headroom: 0.8,
            scale_down_headroom: 0.5,
            scale_down_patience: 3,
        };
        config.validate();
        config
    }

    fn validate(&self) {
        assert!(self.min_replicas > 0, "min_replicas must be at least 1");
        assert!(
            self.min_replicas <= self.max_replicas,
            "min_replicas {} exceeds max_replicas {}",
            self.min_replicas,
            self.max_replicas
        );
        assert!(
            self.headroom > 0.0 && self.headroom <= 1.0,
            "headroom {} outside (0, 1]",
            self.headroom
        );
        assert!(
            self.scale_down_headroom > 0.0 && self.scale_down_headroom <= self.headroom,
            "scale_down_headroom {} outside (0, headroom]",
            self.scale_down_headroom
        );
    }
}

/// One scaling decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ScalingDecision {
    /// Keep the current fleet.
    Hold,
    /// Grow the fleet to the contained target (provision the difference).
    ScaleUp {
        /// Desired total replica count.
        target: usize,
    },
    /// Shrink the fleet to the contained target (drain the difference).
    ScaleDown {
        /// Desired total replica count.
        target: usize,
    },
}

impl ScalingDecision {
    /// The replica count this decision aims for given the current count.
    pub fn target_or(&self, current: usize) -> usize {
        match *self {
            ScalingDecision::Hold => current,
            ScalingDecision::ScaleUp { target } | ScalingDecision::ScaleDown { target } => target,
        }
    }
}

/// SLA-targeted replica-count selection with hysteresis (see module docs).
#[derive(Debug, Clone)]
pub struct ScalingPolicy {
    config: PolicyConfig,
    sla: SlaSpec,
    down_streak: u32,
}

impl ScalingPolicy {
    /// Creates a policy for the given SLA.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`PolicyConfig::bounded`]).
    pub fn new(config: PolicyConfig, sla: SlaSpec) -> Self {
        config.validate();
        ScalingPolicy {
            config,
            sla,
            down_streak: 0,
        }
    }

    /// The policy's configuration.
    pub fn config(&self) -> &PolicyConfig {
        &self.config
    }

    /// Whether an estimate satisfies the SLA scaled by `margin`.
    fn within(&self, estimate: &PerfEstimate, margin: f64) -> bool {
        estimate.feasible
            && estimate.ttft_secs <= self.sla.max_ttft.as_secs_f64() * margin
            && estimate.tpot_secs <= self.sla.max_mtpot.as_secs_f64() * margin
    }

    /// Decides the next fleet size.
    ///
    /// `current` is the effective fleet the decision steers (live plus
    /// already-provisioning replicas — counting in-flight spawns prevents
    /// re-ordering the same scale-up every interval during warm-up).
    /// `estimates[i]` must be the interpolator's prediction for `i + min`
    /// replicas … one entry per candidate size in
    /// `[min_replicas, max_replicas]`.
    ///
    /// # Panics
    ///
    /// Panics if `estimates` does not cover exactly the candidate range.
    pub fn decide(&mut self, current: usize, estimates: &[PerfEstimate]) -> ScalingDecision {
        let min = self.config.min_replicas;
        let max = self.config.max_replicas;
        assert_eq!(
            estimates.len(),
            max - min + 1,
            "need one estimate per candidate size in [{min}, {max}]"
        );
        let current = current.clamp(min, max);
        // Smallest size predicted to hold the SLA with scale-up headroom;
        // saturate at max when nothing qualifies (overload: give it
        // everything we have).
        let needed = (min..=max)
            .find(|&n| self.within(&estimates[n - min], self.config.headroom))
            .unwrap_or(max);
        if needed > current {
            self.down_streak = 0;
            return ScalingDecision::ScaleUp { target: needed };
        }
        // Scale down only when one-fewer replicas would still hold the SLA
        // with the stricter margin, observed for `patience` intervals.
        if current > min
            && self.within(
                &estimates[current - 1 - min],
                self.config.scale_down_headroom,
            )
        {
            self.down_streak += 1;
            if self.down_streak >= self.config.scale_down_patience {
                self.down_streak = 0;
                return ScalingDecision::ScaleDown {
                    target: current - 1,
                };
            }
        } else {
            self.down_streak = 0;
        }
        ScalingDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pf_metrics::SimDuration;

    fn sla() -> SlaSpec {
        // TTFT ≤ 10 s, MTPOT ≤ 1 s.
        SlaSpec::new(SimDuration::from_secs(10), SimDuration::from_secs(1))
    }

    fn ok(ttft: f64, tpot: f64) -> PerfEstimate {
        PerfEstimate {
            ttft_secs: ttft,
            tpot_secs: tpot,
            concurrency: 1.0,
            utilization: 0.5,
            feasible: true,
        }
    }

    fn overloaded() -> PerfEstimate {
        PerfEstimate {
            ttft_secs: 1e6,
            tpot_secs: 10.0,
            concurrency: 100.0,
            utilization: 2.0,
            feasible: false,
        }
    }

    #[test]
    fn scales_up_immediately_to_needed_count() {
        let mut p = ScalingPolicy::new(PolicyConfig::bounded(1, 4), sla());
        // 1..=2 replicas overloaded, 3 fine, 4 fine.
        let estimates = [overloaded(), overloaded(), ok(2.0, 0.1), ok(1.0, 0.05)];
        assert_eq!(
            p.decide(1, &estimates),
            ScalingDecision::ScaleUp { target: 3 }
        );
    }

    #[test]
    fn saturates_at_max_under_hopeless_load() {
        let mut p = ScalingPolicy::new(PolicyConfig::bounded(1, 3), sla());
        let estimates = [overloaded(), overloaded(), overloaded()];
        assert_eq!(
            p.decide(1, &estimates),
            ScalingDecision::ScaleUp { target: 3 }
        );
        // Already at max: hold, not flap.
        assert_eq!(p.decide(3, &estimates), ScalingDecision::Hold);
    }

    #[test]
    fn scale_down_waits_for_patience() {
        let mut p = ScalingPolicy::new(PolicyConfig::bounded(1, 4), sla());
        // Everything is comfortably idle.
        let estimates = [ok(0.5, 0.05), ok(0.4, 0.04), ok(0.3, 0.03), ok(0.2, 0.02)];
        assert_eq!(p.decide(3, &estimates), ScalingDecision::Hold);
        assert_eq!(p.decide(3, &estimates), ScalingDecision::Hold);
        assert_eq!(
            p.decide(3, &estimates),
            ScalingDecision::ScaleDown { target: 2 }
        );
        // Streak resets after the step: two more holds before the next.
        assert_eq!(p.decide(2, &estimates), ScalingDecision::Hold);
        assert_eq!(p.decide(2, &estimates), ScalingDecision::Hold);
        assert_eq!(
            p.decide(2, &estimates),
            ScalingDecision::ScaleDown { target: 1 }
        );
        // Never below min.
        assert_eq!(p.decide(1, &estimates), ScalingDecision::Hold);
    }

    #[test]
    fn borderline_load_does_not_flap() {
        // The smaller fleet holds the SLA with plain headroom but not the
        // stricter scale-down margin: policy must hold, not oscillate.
        let mut p = ScalingPolicy::new(PolicyConfig::bounded(1, 2), sla());
        // 1 replica: ttft 7 s ≤ 8 (headroom 0.8 × 10) but > 5 (0.5 × 10).
        let estimates = [ok(7.0, 0.1), ok(1.0, 0.05)];
        for _ in 0..20 {
            assert_eq!(p.decide(2, &estimates), ScalingDecision::Hold);
        }
    }

    #[test]
    fn interrupted_streak_resets() {
        let mut p = ScalingPolicy::new(PolicyConfig::bounded(1, 2), sla());
        let idle = [ok(0.5, 0.05), ok(0.2, 0.02)];
        let busy = [ok(7.0, 0.1), ok(2.0, 0.05)];
        assert_eq!(p.decide(2, &idle), ScalingDecision::Hold);
        assert_eq!(p.decide(2, &idle), ScalingDecision::Hold);
        // A busy interval wipes the streak.
        assert_eq!(p.decide(2, &busy), ScalingDecision::Hold);
        assert_eq!(p.decide(2, &idle), ScalingDecision::Hold);
        assert_eq!(p.decide(2, &idle), ScalingDecision::Hold);
        assert_eq!(p.decide(2, &idle), ScalingDecision::ScaleDown { target: 1 });
    }

    #[test]
    fn tpot_violation_forces_scale_up() {
        let mut p = ScalingPolicy::new(PolicyConfig::bounded(1, 2), sla());
        // TTFT fine everywhere, TPOT blown on one replica.
        let estimates = [ok(0.5, 2.0), ok(0.4, 0.1)];
        assert_eq!(
            p.decide(1, &estimates),
            ScalingDecision::ScaleUp { target: 2 }
        );
    }

    #[test]
    #[should_panic(expected = "one estimate per candidate")]
    fn wrong_estimate_count_panics() {
        let mut p = ScalingPolicy::new(PolicyConfig::bounded(1, 4), sla());
        let _ = p.decide(1, &[ok(1.0, 0.1)]);
    }

    #[test]
    #[should_panic(expected = "min_replicas must be at least 1")]
    fn zero_min_panics() {
        let _ = PolicyConfig::bounded(0, 3);
    }
}
