//! The planner: observation windows → predictor → interpolator → policy.
//!
//! [`AutoscalePlanner`] is the object a serving cluster embeds. The cluster
//! streams events into it (`on_request_arrival`, `on_request_finished`) and
//! calls [`AutoscalePlanner::plan`] once per adjustment interval; the
//! planner answers with a [`ScalingDecision`] plus the forecast and
//! performance estimate behind it, so reports can show *why* the fleet
//! moved.

use pf_metrics::{ObservationWindow, SimDuration, SimTime, SlaSpec};

use crate::config::AutoscaleConfig;
use crate::interp::{PerfEstimate, PerfInterpolator, PoolRole, StepLatency};
use crate::load::LoadSample;
use crate::policy::{ScalingDecision, ScalingPolicy};
use crate::predictor::LoadPredictor;

/// Result of one planning round.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanOutcome {
    /// What the fleet should do.
    pub decision: ScalingDecision,
    /// Load observed over the interval that just ended.
    pub observed: LoadSample,
    /// Load forecast for the interval ahead.
    pub forecast: LoadSample,
    /// Predicted service quality at the decision's target size.
    pub estimate: PerfEstimate,
}

/// SLA-driven elastic-fleet planner (see module docs).
#[derive(Debug, Clone)]
pub struct AutoscalePlanner<M> {
    config: AutoscaleConfig,
    predictor: LoadPredictor,
    interpolator: PerfInterpolator<M>,
    policy: ScalingPolicy,
    /// Steps to forecast ahead: `ceil(warmup / interval) + 1`, so capacity
    /// ordered now is sized for the load it will actually meet once warm.
    horizon: usize,
    arrivals: ObservationWindow,
    completions: ObservationWindow,
    ttfts: ObservationWindow,
    tpots: ObservationWindow,
    /// Observed load of the previous interval plus the replica count that
    /// was actually serving it (drives interpolator corrections: the
    /// just-measured latencies came from that load on that many live
    /// replicas — warming capacity served nothing).
    previous_interval: Option<(LoadSample, usize)>,
    /// Last non-empty mean lengths, as cold-start fallbacks decay away.
    fallback_input: f64,
    fallback_output: f64,
    /// Per-slot `perf_scale` of a heterogeneous fleet (`None` for a
    /// homogeneous fleet of scale-1.0 replicas): candidate size `n` is
    /// modelled as `n` replicas at the mean scale of the first `n` slots.
    slot_scales: Option<Vec<f64>>,
}

impl<M: StepLatency> AutoscalePlanner<M> {
    /// Creates a planner for one replica type serving both stages
    /// (colocated prefill + decode).
    pub fn new(config: AutoscaleConfig, sla: SlaSpec, model: M) -> Self {
        AutoscalePlanner::with_role(config, sla, model, PoolRole::Colocated)
    }

    /// Creates a planner for one pool of a disaggregated fleet: the
    /// interpolator reads the column of the performance sketch the pool's
    /// stage controls (prefill → TTFT, decode → TPOT).
    pub fn with_role(config: AutoscaleConfig, sla: SlaSpec, model: M, role: PoolRole) -> Self {
        let horizon =
            (config.warmup.as_micros()).div_ceil(config.interval.as_micros()) as usize + 1;
        AutoscalePlanner {
            predictor: LoadPredictor::new(config.predictor),
            interpolator: PerfInterpolator::with_role(model, role),
            policy: ScalingPolicy::new(config.policy, sla),
            horizon,
            arrivals: ObservationWindow::new(config.interval),
            completions: ObservationWindow::new(config.interval),
            ttfts: ObservationWindow::new(config.interval),
            tpots: ObservationWindow::new(config.interval),
            previous_interval: None,
            fallback_input: config.initial_mean_input_tokens,
            fallback_output: config.initial_mean_output_tokens,
            slot_scales: None,
            config,
        }
    }

    /// Declares a heterogeneous fleet: `scales[i]` is the `perf_scale` of
    /// the GPU a fleet of `i + 1` replicas would run in its `(i+1)`-th
    /// position (relative step-latency speed; 1.0 = the base model). The
    /// planner sizes candidate fleets of `n` replicas against the mean
    /// scale of the first `n` entries — exact for homogeneous fleets.
    /// Because drains and re-spawns change which GPUs a given size maps
    /// to, clusters refresh this each round via
    /// [`AutoscalePlanner::update_slot_perf_scales`].
    ///
    /// # Panics
    ///
    /// Panics if `scales` has fewer entries than `max_replicas` or any
    /// entry is not finite and positive.
    pub fn with_slot_perf_scales(mut self, scales: Vec<f64>) -> Self {
        self.update_slot_perf_scales(scales);
        self
    }

    /// Replaces the per-slot perf scales in place. Heterogeneous clusters
    /// call this before every planning round with the fleet each candidate
    /// size would *actually* run (`pf-sim`'s
    /// `fleet::candidate_perf_scales`): scale-downs drain the costliest
    /// members first, so after any shrink the surviving fleet can differ
    /// from the declared provisioning order.
    ///
    /// # Panics
    ///
    /// Panics if `scales` has fewer entries than `max_replicas` or any
    /// entry is not finite and positive.
    pub fn update_slot_perf_scales(&mut self, scales: Vec<f64>) {
        assert!(
            scales.len() >= self.config.policy.max_replicas,
            "need one perf scale per provisioning slot: got {}, max_replicas {}",
            scales.len(),
            self.config.policy.max_replicas
        );
        assert!(
            scales.iter().all(|s| s.is_finite() && *s > 0.0),
            "perf scales must be finite and positive: {scales:?}"
        );
        self.slot_scales = Some(scales);
    }

    /// Mean `perf_scale` of the first `n` provisioning slots (1.0 for a
    /// homogeneous fleet).
    fn fleet_scale(&self, n: usize) -> f64 {
        match &self.slot_scales {
            Some(scales) => {
                let n = n.clamp(1, scales.len());
                scales[..n].iter().sum::<f64>() / n as f64
            }
            None => 1.0,
        }
    }

    /// The adjustment interval.
    pub fn interval(&self) -> SimDuration {
        self.config.interval
    }

    /// Forecast horizon in adjustment intervals, computed as
    /// `ceil(warmup / interval) + 1`: the planner provisions against the
    /// maximum forecast load over this many steps, because capacity
    /// ordered now serves traffic only after the warm-up delay.
    pub fn horizon(&self) -> usize {
        self.horizon
    }

    /// The instance warm-up delay.
    pub fn warmup(&self) -> SimDuration {
        self.config.warmup
    }

    /// The planner's configuration.
    pub fn config(&self) -> &AutoscaleConfig {
        &self.config
    }

    /// The interpolator (exposed for reporting correction factors).
    pub fn interpolator(&self) -> &PerfInterpolator<M> {
        &self.interpolator
    }

    /// Records a request arriving at the cluster front end.
    pub fn on_request_arrival(&mut self, now: SimTime, input_tokens: u32) {
        self.arrivals.observe(now, f64::from(input_tokens));
    }

    /// Records a finished request: its output length and achieved
    /// latencies feed both the load statistics and the interpolator's
    /// correction loop.
    pub fn on_request_finished(
        &mut self,
        now: SimTime,
        output_tokens: u32,
        ttft: SimDuration,
        avg_tpot: SimDuration,
    ) {
        self.completions.observe(now, f64::from(output_tokens));
        self.ttfts.observe(now, ttft.as_secs_f64());
        self.tpots.observe(now, avg_tpot.as_secs_f64());
    }

    /// Runs one planning round at time `now`.
    ///
    /// `live_replicas` is the capacity that served the interval that just
    /// ended; `warming_replicas` is capacity already provisioning. The
    /// decision steers their sum (counting in-flight spawns stops the
    /// planner from re-issuing the same scale-up while capacity warms),
    /// while the interpolator's correction loop attributes observed
    /// latencies to the live count alone — warming replicas served
    /// nothing.
    ///
    /// # Panics
    ///
    /// Panics if `live_replicas + warming_replicas` is zero.
    pub fn plan(
        &mut self,
        now: SimTime,
        live_replicas: usize,
        warming_replicas: usize,
    ) -> PlanOutcome {
        let effective_replicas = live_replicas + warming_replicas;
        assert!(effective_replicas > 0, "planning for an empty fleet");
        self.arrivals.prune(now);
        self.completions.prune(now);
        self.ttfts.prune(now);
        self.tpots.prune(now);
        // 1. Summarize the interval that just ended.
        if let Some(mean) = self.arrivals.mean() {
            self.fallback_input = mean;
        }
        if let Some(mean) = self.completions.mean() {
            self.fallback_output = mean;
        }
        let observed = LoadSample {
            request_rate: self.arrivals.rate_per_s(),
            mean_input_tokens: self.fallback_input,
            mean_output_tokens: self.fallback_output,
        }
        .sanitized();
        // 2. Close the correction loop on the previous interval's load,
        // against the fleet that actually produced those latencies.
        if let (Some((previous, served_by)), Some(ttft), Some(tpot)) =
            (self.previous_interval, self.ttfts.mean(), self.tpots.mean())
        {
            let scale = self.fleet_scale(served_by);
            self.interpolator
                .observe_scaled(&previous, served_by, scale, ttft, tpot);
        }
        self.previous_interval = Some((observed, live_replicas.max(1)));
        // 3. Forecast the warm-up horizon ahead (provisioning against the
        // horizon maximum, so bursts arriving while capacity warms are
        // already paid for) and score every candidate size.
        self.predictor.observe(observed);
        let forecast = self.predictor.forecast_horizon_max(self.horizon);
        let (min, max) = (
            self.policy.config().min_replicas,
            self.policy.config().max_replicas,
        );
        let estimates: Vec<PerfEstimate> = (min..=max)
            .map(|n| {
                self.interpolator
                    .predict_scaled(&forecast, n, self.fleet_scale(n))
            })
            .collect();
        // 4. Decide.
        let decision = self.policy.decide(effective_replicas, &estimates);
        let target = decision.target_or(effective_replicas).clamp(min, max);
        PlanOutcome {
            decision,
            observed,
            forecast,
            estimate: estimates[target - min],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::predictor::PredictorKind;

    /// Toy model: one replica comfortably serves ~2 req/s of this
    /// workload; TTFT blows past the SLA near 4 req/s.
    #[derive(Debug, Clone, Copy)]
    struct ToyModel;

    impl StepLatency for ToyModel {
        fn prefill_secs(&self, prompt_tokens: u64) -> f64 {
            0.02 + prompt_tokens as f64 * 1e-5
        }

        fn decode_secs(&self, batch_size: u64, kv_tokens: u64) -> f64 {
            0.02 + batch_size as f64 * 2e-4 + kv_tokens as f64 * 2e-6
        }

        fn kv_capacity_tokens(&self) -> u64 {
            8_000
        }
    }

    fn sla() -> SlaSpec {
        SlaSpec::new(SimDuration::from_secs(10), SimDuration::from_millis(1500))
    }

    fn planner(min: usize, max: usize) -> AutoscalePlanner<ToyModel> {
        let config = AutoscaleConfig::bounded(min, max)
            .interval(SimDuration::from_secs(10))
            .predictor(PredictorKind::ewma())
            .initial_lengths(100.0, 300.0);
        AutoscalePlanner::new(config, sla(), ToyModel)
    }

    /// Streams `rate` arrivals/s (and matching completions) through one
    /// interval ending at `end`.
    fn feed_interval(p: &mut AutoscalePlanner<ToyModel>, end_s: u64, rate: usize) {
        let start = (end_s - 10) * 1_000;
        for i in 0..rate * 10 {
            let at = SimTime::from_millis(start + (i * 10_000 / (rate * 10)) as u64);
            p.on_request_arrival(at, 100);
            p.on_request_finished(
                at,
                300,
                SimDuration::from_millis(500),
                SimDuration::from_millis(60),
            );
        }
    }

    #[test]
    fn quiet_load_holds_minimum() {
        let mut p = planner(1, 4);
        feed_interval(&mut p, 10, 1);
        let outcome = p.plan(SimTime::from_secs(10), 1, 0);
        assert_eq!(outcome.decision, ScalingDecision::Hold);
        assert!((outcome.observed.request_rate - 1.0).abs() < 0.01);
        assert!(outcome.estimate.feasible);
    }

    #[test]
    fn heavy_load_scales_up() {
        let mut p = planner(1, 6);
        feed_interval(&mut p, 10, 12);
        let outcome = p.plan(SimTime::from_secs(10), 1, 0);
        match outcome.decision {
            ScalingDecision::ScaleUp { target } => assert!(target > 1),
            other => panic!("expected scale-up, got {other:?}"),
        }
    }

    #[test]
    fn load_drop_scales_down_after_patience() {
        let mut p = planner(1, 6);
        // Three busy intervals at 12 req/s hold a large fleet...
        for end in [10, 20, 30] {
            feed_interval(&mut p, end, 12);
            let _ = p.plan(SimTime::from_secs(end), 4, 0);
        }
        // ...then traffic collapses; patience (3) must elapse first.
        let mut downs = 0;
        for end in [40u64, 50, 60, 70, 80, 90] {
            feed_interval(&mut p, end, 1);
            if let ScalingDecision::ScaleDown { .. } =
                p.plan(SimTime::from_secs(end), 4 - downs, 0).decision
            {
                downs += 1;
            }
        }
        assert!(downs >= 1, "fleet never shrank after the load drop");
        assert!(
            downs <= 2,
            "shrank too eagerly: {downs} steps in 6 intervals"
        );
    }

    #[test]
    fn planning_is_deterministic() {
        let run = || {
            let mut p = planner(1, 4);
            let mut outcomes = Vec::new();
            for (i, rate) in [2usize, 6, 10, 10, 3, 1].iter().enumerate() {
                let end = (i as u64 + 1) * 10;
                feed_interval(&mut p, end, *rate);
                outcomes.push(p.plan(SimTime::from_secs(end), 2, 0));
            }
            outcomes
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn empty_interval_reads_zero_rate() {
        let mut p = planner(1, 2);
        feed_interval(&mut p, 10, 4);
        let _ = p.plan(SimTime::from_secs(10), 1, 0);
        // No traffic for a long gap: windows fully expire.
        let outcome = p.plan(SimTime::from_secs(100), 2, 0);
        assert_eq!(outcome.observed.request_rate, 0.0);
        // Length fallbacks persist from the busy interval.
        assert_eq!(outcome.observed.mean_input_tokens, 100.0);
        assert_eq!(outcome.observed.mean_output_tokens, 300.0);
    }

    #[test]
    #[should_panic(expected = "empty fleet")]
    fn zero_replicas_panics() {
        let mut p = planner(1, 2);
        let _ = p.plan(SimTime::ZERO, 0, 0);
    }

    #[test]
    fn slower_slots_provision_more_replicas() {
        let run = |scales: Option<Vec<f64>>| {
            let config = AutoscaleConfig::bounded(1, 6)
                .interval(SimDuration::from_secs(10))
                .predictor(PredictorKind::ewma())
                .initial_lengths(100.0, 300.0);
            let mut p = AutoscalePlanner::new(config, sla(), ToyModel);
            if let Some(scales) = scales {
                p = p.with_slot_perf_scales(scales);
            }
            feed_interval(&mut p, 10, 8);
            p.plan(SimTime::from_secs(10), 1, 0).decision.target_or(1)
        };
        let full_speed = run(None);
        let half_speed = run(Some(vec![0.5; 6]));
        assert!(
            half_speed >= full_speed,
            "half-speed fleet ordered {half_speed} replicas, full-speed {full_speed}"
        );
        assert!(
            half_speed > full_speed,
            "slower GPUs must need more of them"
        );
        // All-1.0 slots are exactly the homogeneous fleet.
        assert_eq!(run(Some(vec![1.0; 6])), full_speed);
    }

    #[test]
    #[should_panic(expected = "one perf scale per provisioning slot")]
    fn too_few_slot_scales_panics() {
        let config = AutoscaleConfig::bounded(1, 4);
        let _ = AutoscalePlanner::new(config, sla(), ToyModel).with_slot_perf_scales(vec![1.0]);
    }

    #[test]
    fn horizon_covers_the_warmup_delay() {
        let case = |warmup_s: u64, interval_s: u64| {
            let config = AutoscaleConfig::bounded(1, 4)
                .interval(SimDuration::from_secs(interval_s))
                .warmup(SimDuration::from_secs(warmup_s));
            AutoscalePlanner::new(config, sla(), ToyModel).horizon()
        };
        assert_eq!(case(0, 10), 1, "zero warm-up degenerates to one step");
        assert_eq!(case(10, 10), 2);
        assert_eq!(case(15, 10), 3, "partial intervals round up");
        assert_eq!(case(30, 10), 4);
    }

    #[test]
    fn longer_warmup_provisions_against_a_ramp_earlier() {
        // A linear ramp under Holt forecasting: the long-warm-up planner
        // must order at least as many replicas as the short-warm-up one at
        // every round, and strictly more at some round before the peak.
        let run = |warmup_s: u64| {
            let config = AutoscaleConfig::bounded(1, 6)
                .interval(SimDuration::from_secs(10))
                .warmup(SimDuration::from_secs(warmup_s))
                .predictor(PredictorKind::holt())
                .initial_lengths(100.0, 300.0);
            let mut p = AutoscalePlanner::new(config, sla(), ToyModel);
            let mut targets = Vec::new();
            let mut current = 1usize;
            for (i, rate) in [1usize, 2, 4, 6, 8, 10, 12].iter().enumerate() {
                let end = (i as u64 + 1) * 10;
                feed_interval(&mut p, end, *rate);
                let outcome = p.plan(SimTime::from_secs(end), current, 0);
                current = outcome.decision.target_or(current).clamp(1, 6);
                targets.push(current);
            }
            targets
        };
        let short = run(0);
        let long = run(40);
        assert!(
            short.iter().zip(&long).all(|(s, l)| l >= s),
            "long-warm-up targets {long:?} fell below short-warm-up {short:?}"
        );
        assert!(
            short.iter().zip(&long).any(|(s, l)| l > s),
            "horizon forecasting never provisioned ahead: {long:?} vs {short:?}"
        );
    }
}
