//! SLA-driven elastic autoscaling for LLM serving fleets.
//!
//! The paper's §7 future work proposes using the Past-Future scheduler's
//! accurate per-batch memory estimates as a load signal *beyond* a single
//! instance. This crate is the production-scale version of that idea (in
//! the spirit of NVIDIA Dynamo's SLA-based planner): a control loop that
//! sizes a fleet of identical serving replicas so that predicted TTFT and
//! TPOT stay inside an SLA while provisioning as few GPU-seconds as
//! possible.
//!
//! # The pipeline: predictor → interpolator → policy
//!
//! Each adjustment interval, the [`AutoscalePlanner`] runs three stages:
//!
//! 1. **Predict** ([`LoadPredictor`]): sliding
//!    [`ObservationWindow`](pf_metrics::ObservationWindow)s summarize the
//!    interval that just ended into a [`LoadSample`] — request rate, mean
//!    prompt length, mean output length — and a forecaster
//!    ([`PredictorKind::Constant`], [`PredictorKind::Ewma`], or
//!    Holt–Winters with trend and additive seasonality) extrapolates the
//!    next interval. Seasonal forecasting lets the fleet scale *ahead of*
//!    a diurnal peak instead of chasing it.
//! 2. **Interpolate** ([`PerfInterpolator`]): for every candidate fleet
//!    size, map the forecast load to expected TTFT/TPOT using a
//!    [`StepLatency`] model (in the simulator, a wrapper over the
//!    roofline `PerfModel`),
//!    via a Little's-law fixed point for decode concurrency and an
//!    M/M/1-shaped queueing term for admission wait. Multiplicative
//!    correction factors, updated from observed-versus-predicted error
//!    every interval, absorb the sketch's systematic bias.
//! 3. **Decide** ([`ScalingPolicy`]): pick the smallest fleet whose
//!    predicted latency holds the [`SlaSpec`](pf_metrics::SlaSpec) with
//!    headroom. Scale-up jumps straight to the required count; scale-down
//!    requires a stricter margin for several consecutive intervals and
//!    then releases one replica at a time (asymmetric hysteresis — the
//!    cost of under-provisioning is SLA burn plus a warm-up delay, the
//!    cost of over-provisioning is only GPU-seconds).
//!
//! The planner forecasts `ceil(warmup / interval) + 1` steps ahead and
//! provisions against the *horizon maximum*: capacity ordered now serves
//! traffic only after the warm-up delay, so sizing for the one-step
//! forecast alone would chronically lag step bursts.
//!
//! For disaggregated (DistServe/Dynamo-style) fleets, build one planner
//! per pool with [`AutoscalePlanner::with_role`]: a [`PoolRole::Prefill`]
//! planner reads the TTFT-bound column of the interpolator (M/M/1 queue of
//! prefill passes) and a [`PoolRole::Decode`] planner the TPOT-bound
//! column (the decode fixed point), so each pool is sized against exactly
//! the SLA term its stage controls.
//!
//! The crate is deliberately simulator-agnostic: it depends only on
//! `pf-metrics` and sees the serving system through the [`StepLatency`]
//! trait and the planner's event stream. `pf-sim`'s `ElasticCluster` wires
//! it to the discrete-event engine; a real deployment would wire it to
//! Prometheus counters and a Kubernetes replica set.
//!
//! # Example
//!
//! ```
//! use pf_autoscale::{
//!     AutoscaleConfig, AutoscalePlanner, PredictorKind, ScalingDecision, StepLatency,
//! };
//! use pf_metrics::{SimDuration, SimTime, SlaSpec};
//!
//! // A toy replica: flat 50 ms prefill, decode step linear in batch/KV.
//! struct Toy;
//! impl StepLatency for Toy {
//!     fn prefill_secs(&self, _: u64) -> f64 { 0.05 }
//!     fn decode_secs(&self, b: u64, kv: u64) -> f64 {
//!         0.02 + b as f64 * 1e-4 + kv as f64 * 1e-6
//!     }
//!     fn kv_capacity_tokens(&self) -> u64 { 20_000 }
//! }
//!
//! let config = AutoscaleConfig::bounded(1, 8)
//!     .interval(SimDuration::from_secs(10))
//!     .predictor(PredictorKind::holt());
//! let mut planner = AutoscalePlanner::new(config, SlaSpec::chat_7b(), Toy);
//!
//! // A burst of arrivals in the first interval...
//! for i in 0..200 {
//!     planner.on_request_arrival(SimTime::from_millis(50 * i), 256);
//! }
//! // ...forces a scale-up decision.
//! let outcome = planner.plan(SimTime::from_secs(10), 1, 0);
//! assert!(matches!(outcome.decision, ScalingDecision::ScaleUp { .. }));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod interp;
mod load;
mod planner;
mod policy;
mod predictor;

pub use config::AutoscaleConfig;
pub use interp::{PerfEstimate, PerfInterpolator, PoolRole, StepLatency};
pub use load::LoadSample;
pub use planner::{AutoscalePlanner, PlanOutcome};
pub use policy::{PolicyConfig, ScalingDecision, ScalingPolicy};
pub use predictor::{LoadPredictor, PredictorKind};
