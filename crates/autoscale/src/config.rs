//! Autoscaler configuration.

use pf_metrics::SimDuration;

use crate::policy::PolicyConfig;
use crate::predictor::PredictorKind;

/// Full configuration of the elastic-scaling planner.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AutoscaleConfig {
    /// How often the planner re-evaluates the fleet size (also the
    /// load-observation window).
    pub interval: SimDuration,
    /// Delay between provisioning a replica and it accepting traffic
    /// (instance boot, weight load, warm-up batches).
    pub warmup: SimDuration,
    /// Load-forecasting method.
    pub predictor: PredictorKind,
    /// Replica bounds and hysteresis.
    pub policy: PolicyConfig,
    /// Assumed mean prompt length before any arrival has been observed.
    pub initial_mean_input_tokens: f64,
    /// Assumed mean output length before any completion has been observed
    /// (mirrors the serving engine's cold-start output estimate).
    pub initial_mean_output_tokens: f64,
}

impl AutoscaleConfig {
    /// Defaults for a `[min, max]`-replica fleet: 10 s adjustment
    /// interval, 30 s warm-up, trend-only Holt forecasting.
    ///
    /// # Panics
    ///
    /// Panics if `min == 0` or `min > max`.
    pub fn bounded(min_replicas: usize, max_replicas: usize) -> Self {
        AutoscaleConfig {
            interval: SimDuration::from_secs(10),
            warmup: SimDuration::from_secs(30),
            predictor: PredictorKind::holt(),
            policy: PolicyConfig::bounded(min_replicas, max_replicas),
            initial_mean_input_tokens: 256.0,
            initial_mean_output_tokens: 256.0,
        }
    }

    /// Sets the adjustment interval.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero.
    pub fn interval(mut self, interval: SimDuration) -> Self {
        assert!(!interval.is_zero(), "zero adjustment interval");
        self.interval = interval;
        self
    }

    /// Sets the instance warm-up delay (zero is allowed: pre-warmed pool).
    pub fn warmup(mut self, warmup: SimDuration) -> Self {
        self.warmup = warmup;
        self
    }

    /// Sets the load predictor.
    pub fn predictor(mut self, predictor: PredictorKind) -> Self {
        self.predictor = predictor;
        self
    }

    /// Replaces the policy parameters.
    pub fn policy(mut self, policy: PolicyConfig) -> Self {
        self.policy = policy;
        self
    }

    /// Seeds the cold-start length assumptions (e.g. from workload
    /// history, mirroring the engine's `history_warmup`).
    pub fn initial_lengths(mut self, mean_input: f64, mean_output: f64) -> Self {
        assert!(
            mean_input >= 0.0 && mean_output >= 0.0,
            "negative initial lengths"
        );
        self.initial_mean_input_tokens = mean_input;
        self.initial_mean_output_tokens = mean_output;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let c = AutoscaleConfig::bounded(1, 6)
            .interval(SimDuration::from_secs(5))
            .warmup(SimDuration::from_secs(20))
            .predictor(PredictorKind::holt_winters(12))
            .initial_lengths(300.0, 1800.0);
        assert_eq!(c.interval, SimDuration::from_secs(5));
        assert_eq!(c.warmup, SimDuration::from_secs(20));
        assert_eq!(c.policy.min_replicas, 1);
        assert_eq!(c.policy.max_replicas, 6);
        assert_eq!(c.initial_mean_output_tokens, 1800.0);
    }

    #[test]
    #[should_panic(expected = "zero adjustment interval")]
    fn zero_interval_panics() {
        let _ = AutoscaleConfig::bounded(1, 2).interval(SimDuration::ZERO);
    }
}
