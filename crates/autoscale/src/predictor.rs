//! Load predictors: forecast the next adjustment interval from history.
//!
//! Three predictors, in increasing sophistication (mirroring the planner
//! families of NVIDIA Dynamo's SLA-based planner):
//!
//! * **Constant** — the next interval looks like the last one. Optimal for
//!   genuinely stationary traffic, lags every ramp by one interval.
//! * **EWMA** — exponentially weighted moving average. Smooths noise;
//!   still lags trends.
//! * **Holt–Winters** — double exponential smoothing (level + trend) with
//!   optional additive seasonality. Extrapolates ramps and anticipates
//!   periodic load (diurnal cycles) once it has seen a full season.
//!
//! Every predictor is pure arithmetic over its inputs — deterministic,
//! allocation-light, and independent per forecast component (request rate,
//! input length, output length are forecast as three scalar series).

use crate::load::LoadSample;

/// Which scalar predictor to instantiate (see module docs).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PredictorKind {
    /// Repeat the last observation.
    Constant,
    /// Exponentially weighted moving average with smoothing factor
    /// `alpha` in `(0, 1]` (1.0 degenerates to Constant).
    Ewma {
        /// Weight of the newest observation.
        alpha: f64,
    },
    /// Holt–Winters: level smoothing `alpha`, trend smoothing `beta`,
    /// seasonal smoothing `gamma` over an additive season of
    /// `season_len` intervals (`season_len == 0` disables seasonality,
    /// leaving Holt's linear trend method).
    HoltWinters {
        /// Level smoothing factor in `(0, 1]`.
        alpha: f64,
        /// Trend smoothing factor in `[0, 1]`.
        beta: f64,
        /// Seasonal smoothing factor in `[0, 1]`.
        gamma: f64,
        /// Intervals per season (0 = no seasonality).
        season_len: usize,
    },
}

impl PredictorKind {
    /// Default EWMA (`alpha = 0.5`).
    pub const fn ewma() -> Self {
        PredictorKind::Ewma { alpha: 0.5 }
    }

    /// Default Holt–Winters with trend only (no seasonality).
    pub const fn holt() -> Self {
        PredictorKind::HoltWinters {
            alpha: 0.5,
            beta: 0.3,
            gamma: 0.0,
            season_len: 0,
        }
    }

    /// Default seasonal Holt–Winters over `season_len` intervals.
    pub const fn holt_winters(season_len: usize) -> Self {
        PredictorKind::HoltWinters {
            alpha: 0.5,
            beta: 0.2,
            gamma: 0.5,
            season_len,
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            PredictorKind::Constant => "constant",
            PredictorKind::Ewma { .. } => "ewma",
            PredictorKind::HoltWinters { season_len: 0, .. } => "holt",
            PredictorKind::HoltWinters { .. } => "holt-winters",
        }
    }

    fn build(&self) -> SeriesPredictor {
        match *self {
            PredictorKind::Constant => SeriesPredictor::Constant { last: None },
            PredictorKind::Ewma { alpha } => {
                assert!(
                    alpha > 0.0 && alpha <= 1.0,
                    "ewma alpha {alpha} outside (0, 1]"
                );
                SeriesPredictor::Ewma { alpha, level: None }
            }
            PredictorKind::HoltWinters {
                alpha,
                beta,
                gamma,
                season_len,
            } => {
                assert!(
                    alpha > 0.0 && alpha <= 1.0,
                    "holt-winters alpha {alpha} outside (0, 1]"
                );
                assert!(
                    (0.0..=1.0).contains(&beta),
                    "holt-winters beta {beta} outside [0, 1]"
                );
                assert!(
                    (0.0..=1.0).contains(&gamma),
                    "holt-winters gamma {gamma} outside [0, 1]"
                );
                SeriesPredictor::HoltWinters {
                    alpha,
                    beta,
                    gamma,
                    season_len,
                    level: None,
                    trend: 0.0,
                    seasonal: vec![0.0; season_len],
                    observed: 0,
                }
            }
        }
    }
}

/// One-step-ahead forecaster for a scalar series.
#[derive(Debug, Clone)]
enum SeriesPredictor {
    Constant {
        last: Option<f64>,
    },
    Ewma {
        alpha: f64,
        level: Option<f64>,
    },
    HoltWinters {
        alpha: f64,
        beta: f64,
        gamma: f64,
        season_len: usize,
        level: Option<f64>,
        trend: f64,
        seasonal: Vec<f64>,
        observed: usize,
    },
}

impl SeriesPredictor {
    fn observe(&mut self, value: f64) {
        match self {
            SeriesPredictor::Constant { last } => *last = Some(value),
            SeriesPredictor::Ewma { alpha, level } => {
                *level = Some(match *level {
                    None => value,
                    Some(l) => *alpha * value + (1.0 - *alpha) * l,
                });
            }
            SeriesPredictor::HoltWinters {
                alpha,
                beta,
                gamma,
                season_len,
                level,
                trend,
                seasonal,
                observed,
            } => {
                let season_idx = if *season_len > 0 {
                    *observed % *season_len
                } else {
                    0
                };
                match *level {
                    None => {
                        *level = Some(value);
                        *trend = 0.0;
                    }
                    Some(l) => {
                        let s = if *season_len > 0 && *observed >= *season_len {
                            seasonal[season_idx]
                        } else {
                            0.0
                        };
                        let new_level = *alpha * (value - s) + (1.0 - *alpha) * (l + *trend);
                        *trend = *beta * (new_level - l) + (1.0 - *beta) * *trend;
                        *level = Some(new_level);
                    }
                }
                if *season_len > 0 {
                    let l = level.expect("set above");
                    let deviation = value - l;
                    seasonal[season_idx] = if *observed < *season_len {
                        // First pass through the season: take the raw
                        // deviation as the initial seasonal index.
                        deviation
                    } else {
                        *gamma * deviation + (1.0 - *gamma) * seasonal[season_idx]
                    };
                }
                *observed += 1;
            }
        }
    }

    /// Forecast `steps ≥ 1` intervals ahead; `None` before any observation.
    ///
    /// Constant and EWMA are flat extrapolators (every step reads the same
    /// value); Holt–Winters extends the trend linearly and reads the
    /// seasonal index of the target step.
    fn forecast_ahead(&self, steps: usize) -> Option<f64> {
        debug_assert!(steps >= 1, "forecast horizon starts at one step");
        match self {
            SeriesPredictor::Constant { last } => *last,
            SeriesPredictor::Ewma { level, .. } => *level,
            SeriesPredictor::HoltWinters {
                season_len,
                level,
                trend,
                seasonal,
                observed,
                ..
            } => {
                let level = (*level)?;
                let s = if *season_len > 0 && *observed >= *season_len {
                    seasonal[(*observed + steps - 1) % *season_len]
                } else {
                    0.0
                };
                Some((level + *trend * steps as f64 + s).max(0.0))
            }
        }
    }
}

/// Forecasts the three components of a [`LoadSample`] independently.
#[derive(Debug, Clone)]
pub struct LoadPredictor {
    kind: PredictorKind,
    rate: SeriesPredictor,
    input: SeriesPredictor,
    output: SeriesPredictor,
}

impl LoadPredictor {
    /// Creates a predictor of the given kind.
    ///
    /// # Panics
    ///
    /// Panics if the kind's smoothing parameters are out of range.
    pub fn new(kind: PredictorKind) -> Self {
        LoadPredictor {
            kind,
            rate: kind.build(),
            input: kind.build(),
            output: kind.build(),
        }
    }

    /// The configured predictor kind.
    pub fn kind(&self) -> PredictorKind {
        self.kind
    }

    /// Feeds one interval's observed load.
    pub fn observe(&mut self, sample: LoadSample) {
        let sample = sample.sanitized();
        self.rate.observe(sample.request_rate);
        self.input.observe(sample.mean_input_tokens);
        self.output.observe(sample.mean_output_tokens);
    }

    /// Forecast for the next interval ([`LoadSample::ZERO`] before any
    /// observation).
    pub fn forecast(&self) -> LoadSample {
        self.forecast_ahead(1)
    }

    /// Forecast `steps ≥ 1` intervals ahead ([`LoadSample::ZERO`] before
    /// any observation).
    ///
    /// # Panics
    ///
    /// Panics if `steps` is zero.
    pub fn forecast_ahead(&self, steps: usize) -> LoadSample {
        assert!(steps >= 1, "forecast horizon starts at one step");
        LoadSample {
            request_rate: self.rate.forecast_ahead(steps).unwrap_or(0.0),
            mean_input_tokens: self.input.forecast_ahead(steps).unwrap_or(0.0),
            mean_output_tokens: self.output.forecast_ahead(steps).unwrap_or(0.0),
        }
        .sanitized()
    }

    /// Component-wise maximum of the forecasts for steps `1..=horizon` —
    /// the conservative load to provision against when new capacity takes
    /// `horizon - 1` extra intervals to come up (see ROADMAP: a warm-up
    /// delay longer than one adjustment interval must not lag step
    /// bursts).
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is zero.
    pub fn forecast_horizon_max(&self, horizon: usize) -> LoadSample {
        assert!(horizon >= 1, "forecast horizon starts at one step");
        (1..=horizon)
            .map(|k| self.forecast_ahead(k))
            .fold(LoadSample::ZERO, |acc, f| LoadSample {
                request_rate: acc.request_rate.max(f.request_rate),
                mean_input_tokens: acc.mean_input_tokens.max(f.mean_input_tokens),
                mean_output_tokens: acc.mean_output_tokens.max(f.mean_output_tokens),
            })
            .sanitized()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed(kind: PredictorKind, values: &[f64]) -> f64 {
        let mut p = kind.build();
        for &v in values {
            p.observe(v);
        }
        p.forecast_ahead(1).expect("observed at least once")
    }

    #[test]
    fn constant_repeats_last() {
        assert_eq!(feed(PredictorKind::Constant, &[3.0, 9.0, 5.0]), 5.0);
    }

    #[test]
    fn ewma_converges_to_stationary_level() {
        let values = vec![10.0; 50];
        let f = feed(PredictorKind::ewma(), &values);
        assert!((f - 10.0).abs() < 1e-9);
        // Smooths an outlier instead of chasing it.
        let mut with_spike = vec![10.0; 50];
        with_spike.push(100.0);
        let f = feed(PredictorKind::ewma(), &with_spike);
        assert!(f > 10.0 && f < 60.0, "spiked forecast {f}");
    }

    #[test]
    fn holt_extrapolates_linear_ramp() {
        // y_t = 2t: after enough observations the trend term predicts
        // ahead of the last value, while EWMA lags behind it.
        let ramp: Vec<f64> = (0..60).map(|t| 2.0 * t as f64).collect();
        let last = *ramp.last().unwrap();
        let holt = feed(PredictorKind::holt(), &ramp);
        let ewma = feed(PredictorKind::ewma(), &ramp);
        assert!(holt > last, "holt {holt} should lead the ramp past {last}");
        assert!((holt - (last + 2.0)).abs() < 1.0, "holt forecast {holt}");
        assert!(ewma < last, "ewma {ewma} should lag the ramp");
    }

    #[test]
    fn holt_winters_learns_seasonality() {
        // Period-8 square wave: 4 low intervals (10), 4 high (50).
        let season: Vec<f64> = (0..8).map(|i| if i < 4 { 10.0 } else { 50.0 }).collect();
        let mut p = PredictorKind::holt_winters(8).build();
        for _ in 0..6 {
            for &v in &season {
                p.observe(v);
            }
        }
        // Next interval is the start of the low phase; a seasonal model
        // must predict low even though the last observation was high.
        let f = p.forecast_ahead(1).unwrap();
        assert!(f < 25.0, "seasonal forecast {f} should anticipate the dip");
        // Step through the low phase; at the boundary it must predict the
        // coming high phase.
        for _ in 0..4 {
            p.observe(10.0);
        }
        let f = p.forecast_ahead(1).unwrap();
        assert!(f > 35.0, "seasonal forecast {f} should anticipate the peak");
    }

    #[test]
    fn forecast_never_negative() {
        // A steep downward ramp would extrapolate below zero without the
        // clamp.
        let ramp: Vec<f64> = (0..30).map(|t| 100.0 - 10.0 * t as f64).collect();
        let f = feed(PredictorKind::holt(), &ramp);
        assert!(f >= 0.0, "forecast {f}");
    }

    #[test]
    fn load_predictor_tracks_components_independently() {
        let mut p = LoadPredictor::new(PredictorKind::Constant);
        assert_eq!(p.forecast(), LoadSample::ZERO);
        p.observe(LoadSample {
            request_rate: 5.0,
            mean_input_tokens: 120.0,
            mean_output_tokens: 340.0,
        });
        let f = p.forecast();
        assert_eq!(f.request_rate, 5.0);
        assert_eq!(f.mean_input_tokens, 120.0);
        assert_eq!(f.mean_output_tokens, 340.0);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1]")]
    fn bad_alpha_panics() {
        let _ = LoadPredictor::new(PredictorKind::Ewma { alpha: 0.0 });
    }

    #[test]
    fn holt_horizon_extends_the_trend() {
        // y_t = 2t: the k-step forecast must lead by about 2k.
        let ramp: Vec<f64> = (0..60).map(|t| 2.0 * t as f64).collect();
        let mut p = PredictorKind::holt().build();
        for &v in &ramp {
            p.observe(v);
        }
        let one = p.forecast_ahead(1).unwrap();
        let three = p.forecast_ahead(3).unwrap();
        assert!(
            (three - one - 4.0).abs() < 0.5,
            "3-step {three} vs 1-step {one}"
        );
    }

    #[test]
    fn flat_predictors_have_flat_horizons() {
        for kind in [PredictorKind::Constant, PredictorKind::ewma()] {
            let mut p = kind.build();
            for v in [3.0, 7.0, 5.0] {
                p.observe(v);
            }
            assert_eq!(p.forecast_ahead(1), p.forecast_ahead(5));
        }
    }

    #[test]
    fn horizon_max_dominates_single_step() {
        let mut p = LoadPredictor::new(PredictorKind::holt());
        for t in 0..30 {
            p.observe(LoadSample {
                request_rate: t as f64,
                mean_input_tokens: 100.0,
                mean_output_tokens: 200.0,
            });
        }
        let one = p.forecast();
        let horizon = p.forecast_horizon_max(4);
        assert!(horizon.request_rate >= one.request_rate);
        assert!(horizon.mean_input_tokens >= one.mean_input_tokens);
    }

    #[test]
    fn seasonal_horizon_reads_future_season_indices() {
        // Period-4 square wave: 2 low (10), 2 high (50). Right before the
        // high phase, a 2-step horizon max must anticipate the peak even
        // though the 1-step forecast may still read low.
        let season = [10.0, 10.0, 50.0, 50.0];
        let mut p = LoadPredictor::new(PredictorKind::holt_winters(4));
        for _ in 0..8 {
            for v in season {
                p.observe(LoadSample {
                    request_rate: v,
                    mean_input_tokens: 100.0,
                    mean_output_tokens: 100.0,
                });
            }
        }
        // Next index is the low phase start; two steps later is still low,
        // three steps ahead is high.
        let h3 = p.forecast_horizon_max(3);
        assert!(
            h3.request_rate > 35.0,
            "horizon max {} should see the coming peak",
            h3.request_rate
        );
    }

    #[test]
    #[should_panic(expected = "horizon starts at one")]
    fn zero_horizon_panics() {
        let _ = LoadPredictor::new(PredictorKind::ewma()).forecast_horizon_max(0);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(48))]

            /// Predictors converge on stationary series: forecast within
            /// 1% of the level after 100 identical observations.
            #[test]
            fn stationary_convergence(
                level in 0.1f64..1e6,
                kind_idx in 0usize..4,
            ) {
                let kind = [
                    PredictorKind::Constant,
                    PredictorKind::ewma(),
                    PredictorKind::holt(),
                    PredictorKind::holt_winters(6),
                ][kind_idx];
                let f = feed(kind, &vec![level; 100]);
                prop_assert!(
                    (f - level).abs() / level < 0.01,
                    "{} forecast {f} vs level {level}",
                    kind.label()
                );
            }

            /// Forecasts are always finite and non-negative for arbitrary
            /// non-negative inputs.
            #[test]
            fn forecasts_stay_finite(
                values in proptest::collection::vec(0.0f64..1e9, 1..100),
                kind_idx in 0usize..4,
            ) {
                let kind = [
                    PredictorKind::Constant,
                    PredictorKind::ewma(),
                    PredictorKind::holt(),
                    PredictorKind::holt_winters(5),
                ][kind_idx];
                let f = feed(kind, &values);
                prop_assert!(f.is_finite() && f >= 0.0, "forecast {f}");
            }
        }
    }
}
