//! Observed and forecast load descriptions.

/// Aggregate offered load over one adjustment interval.
///
/// This is the quantity the predictors forecast and the performance
/// interpolator consumes: how many requests per second arrive, and how
/// large they are on average.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LoadSample {
    /// Request arrivals per second.
    pub request_rate: f64,
    /// Mean prompt length in tokens.
    pub mean_input_tokens: f64,
    /// Mean generated-output length in tokens.
    pub mean_output_tokens: f64,
}

impl LoadSample {
    /// The zero-load sample.
    pub const ZERO: LoadSample = LoadSample {
        request_rate: 0.0,
        mean_input_tokens: 0.0,
        mean_output_tokens: 0.0,
    };

    /// Offered token throughput demand (decode tokens per second).
    pub fn decode_tokens_per_s(&self) -> f64 {
        self.request_rate * self.mean_output_tokens
    }

    /// Offered prefill demand (prompt tokens per second).
    pub fn prefill_tokens_per_s(&self) -> f64 {
        self.request_rate * self.mean_input_tokens
    }

    /// Mean total KV footprint of one request at completion.
    pub fn mean_total_tokens(&self) -> f64 {
        self.mean_input_tokens + self.mean_output_tokens
    }

    /// Clamps every component to be finite and non-negative.
    pub fn sanitized(self) -> LoadSample {
        let fix = |v: f64| if v.is_finite() && v > 0.0 { v } else { 0.0 };
        LoadSample {
            request_rate: fix(self.request_rate),
            mean_input_tokens: fix(self.mean_input_tokens),
            mean_output_tokens: fix(self.mean_output_tokens),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_demands() {
        let s = LoadSample {
            request_rate: 4.0,
            mean_input_tokens: 100.0,
            mean_output_tokens: 300.0,
        };
        assert_eq!(s.decode_tokens_per_s(), 1200.0);
        assert_eq!(s.prefill_tokens_per_s(), 400.0);
        assert_eq!(s.mean_total_tokens(), 400.0);
    }

    #[test]
    fn sanitize_clamps_bad_values() {
        let s = LoadSample {
            request_rate: f64::NAN,
            mean_input_tokens: -3.0,
            mean_output_tokens: 5.0,
        }
        .sanitized();
        assert_eq!(s.request_rate, 0.0);
        assert_eq!(s.mean_input_tokens, 0.0);
        assert_eq!(s.mean_output_tokens, 5.0);
    }
}
