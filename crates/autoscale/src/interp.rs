//! Performance interpolation: predicted load → expected TTFT/TPOT.
//!
//! The interpolator answers the planner's central question: *if the next
//! interval's load looks like `L` and we run `n` replicas, what TTFT and
//! TPOT should we expect?* It combines:
//!
//! 1. an analytic queueing sketch on top of a [`StepLatency`] model (the
//!    roofline `PerfModel` in `pf-sim` implements this trait) — decode
//!    concurrency from Little's law solved by fixed-point iteration,
//!    utilization from the token-throughput ceiling, M/M/1-shaped queueing
//!    delay for TTFT;
//! 2. multiplicative **correction factors** updated from observed-versus-
//!    predicted error each interval, so systematic model bias (the sketch
//!    ignores prefill interference, admission batching, eviction storms)
//!    is absorbed instead of propagated into scaling decisions.
//!
//! Disaggregated (prefill/decode-split) fleets size each pool against its
//! own SLA term. A [`PoolRole`] selects which *column* of the sketch a
//! pool's planner reads: [`PoolRole::Prefill`] replicas are an M/M/1 queue
//! of prefill passes (TTFT-bound; TPOT is reported as zero so only the
//! TTFT term of the SLA can bind), [`PoolRole::Decode`] replicas run the
//! decode fixed point alone (TPOT-bound; TTFT is reported as zero — the
//! first token is produced by the prefill pool).

use crate::load::LoadSample;

/// Which serving stage a pool's replicas execute.
///
/// Colocated replicas (the default) run both stages, so both SLA terms
/// bind. In a disaggregated deployment each pool is sized against the term
/// its stage controls: prefill against TTFT, decode against TPOT.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PoolRole {
    /// One replica runs prefill and decode (single-engine serving).
    Colocated,
    /// Prefill-only replicas: TTFT-bound, no steady-state decode batch.
    Prefill,
    /// Decode-only replicas: TPOT-bound, first tokens come from elsewhere.
    Decode,
}

/// Step-latency oracle of one serving replica.
///
/// `pf-sim`'s elastic cluster wraps its roofline `PerfModel` (together
/// with the deployment's effective KV capacity, which a config override
/// may shrink below the hardware-derived value) to implement this; the
/// indirection keeps this crate free of a dependency cycle (the simulator
/// depends on the autoscaler).
pub trait StepLatency {
    /// Latency in seconds of a prefill pass over `prompt_tokens`.
    fn prefill_secs(&self, prompt_tokens: u64) -> f64;

    /// Latency in seconds of one decode step for `batch_size` sequences
    /// over `kv_tokens` live KV tokens.
    fn decode_secs(&self, batch_size: u64, kv_tokens: u64) -> f64;

    /// KV-cache capacity of one replica, in tokens.
    fn kv_capacity_tokens(&self) -> u64;
}

/// Expected per-request service quality at a given load and fleet size.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PerfEstimate {
    /// Expected time to first token, in seconds.
    pub ttft_secs: f64,
    /// Expected time per output token (decode-step latency), in seconds.
    pub tpot_secs: f64,
    /// Expected steady-state decode concurrency per replica.
    pub concurrency: f64,
    /// Fraction of the per-replica token-throughput ceiling in use.
    pub utilization: f64,
    /// False when the offered load exceeds what the fleet can serve at
    /// all (utilization ≥ 1): the queue grows without bound.
    pub feasible: bool,
}

/// TTFT sentinel for infeasible (unboundedly queued) operating points.
const INFEASIBLE_TTFT_SECS: f64 = 1e6;

/// Maps predicted load to expected TTFT/TPOT for candidate fleet sizes.
#[derive(Debug, Clone)]
pub struct PerfInterpolator<M> {
    model: M,
    role: PoolRole,
    ttft_correction: f64,
    tpot_correction: f64,
    correction_alpha: f64,
}

/// Correction factors stay within this band so a few wild observations
/// cannot wedge the planner into permanent over- or under-scaling.
const CORRECTION_BOUNDS: (f64, f64) = (0.2, 5.0);

impl<M: StepLatency> PerfInterpolator<M> {
    /// Wraps a step-latency model with neutral corrections (colocated
    /// replicas).
    pub fn new(model: M) -> Self {
        PerfInterpolator::with_role(model, PoolRole::Colocated)
    }

    /// Wraps a step-latency model for replicas of the given [`PoolRole`].
    pub fn with_role(model: M, role: PoolRole) -> Self {
        PerfInterpolator {
            model,
            role,
            ttft_correction: 1.0,
            tpot_correction: 1.0,
            correction_alpha: 0.3,
        }
    }

    /// The pool role this interpolator models.
    pub fn role(&self) -> PoolRole {
        self.role
    }

    /// Current TTFT correction factor (observed/modelled, smoothed).
    pub fn ttft_correction(&self) -> f64 {
        self.ttft_correction
    }

    /// Current TPOT correction factor (observed/modelled, smoothed).
    pub fn tpot_correction(&self) -> f64 {
        self.tpot_correction
    }

    /// The underlying step-latency model.
    pub fn model(&self) -> &M {
        &self.model
    }

    /// Expected service quality for `load` spread over `replicas`
    /// replicas, with corrections applied.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn predict(&self, load: &LoadSample, replicas: usize) -> PerfEstimate {
        self.predict_scaled(load, replicas, 1.0)
    }

    /// [`PerfInterpolator::predict`] for replicas whose step latencies run
    /// `perf_scale`× the base model's speed (2.0 = twice as fast). A
    /// heterogeneous planner passes the mean `perf_scale` of the candidate
    /// fleet; 1.0 reproduces the homogeneous prediction bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero or `perf_scale` is not finite and
    /// positive.
    pub fn predict_scaled(
        &self,
        load: &LoadSample,
        replicas: usize,
        perf_scale: f64,
    ) -> PerfEstimate {
        let mut e = self.raw_predict(load, replicas, perf_scale);
        e.ttft_secs = (e.ttft_secs * self.ttft_correction).min(INFEASIBLE_TTFT_SECS);
        e.tpot_secs *= self.tpot_correction;
        e
    }

    /// Folds one interval's observed TTFT/TPOT (means over finished
    /// requests) into the correction factors, comparing against what the
    /// uncorrected model predicts for the same operating point. Only the
    /// latency term the pool's role controls is folded: a decode pool
    /// teaches nothing about TTFT and a prefill pool nothing about TPOT.
    pub fn observe(
        &mut self,
        load: &LoadSample,
        replicas: usize,
        observed_ttft_secs: f64,
        observed_tpot_secs: f64,
    ) {
        self.observe_scaled(load, replicas, 1.0, observed_ttft_secs, observed_tpot_secs);
    }

    /// [`PerfInterpolator::observe`] against replicas running at
    /// `perf_scale`× the base model's speed — the scale of the fleet that
    /// actually produced the observed latencies.
    pub fn observe_scaled(
        &mut self,
        load: &LoadSample,
        replicas: usize,
        perf_scale: f64,
        observed_ttft_secs: f64,
        observed_tpot_secs: f64,
    ) {
        let raw = self.raw_predict(load, replicas, perf_scale);
        if !raw.feasible {
            // The sketch already says "overloaded"; observed latencies from
            // a saturated system would teach the corrections nothing but
            // queue length.
            return;
        }
        let fold = |correction: &mut f64, observed: f64, modelled: f64, alpha: f64| {
            if observed.is_finite() && observed > 0.0 && modelled > 0.0 {
                let ratio = (observed / modelled).clamp(CORRECTION_BOUNDS.0, CORRECTION_BOUNDS.1);
                *correction = (alpha * ratio + (1.0 - alpha) * *correction)
                    .clamp(CORRECTION_BOUNDS.0, CORRECTION_BOUNDS.1);
            }
        };
        if self.role != PoolRole::Decode {
            fold(
                &mut self.ttft_correction,
                observed_ttft_secs,
                raw.ttft_secs,
                self.correction_alpha,
            );
        }
        if self.role != PoolRole::Prefill {
            fold(
                &mut self.tpot_correction,
                observed_tpot_secs,
                raw.tpot_secs,
                self.correction_alpha,
            );
        }
    }

    /// Prefill-pass latency at the fleet's speed scale.
    fn prefill_secs(&self, prompt_tokens: u64, scale: f64) -> f64 {
        self.model.prefill_secs(prompt_tokens) / scale
    }

    /// Decode-step latency at the fleet's speed scale.
    fn decode_secs(&self, batch_size: u64, kv_tokens: u64, scale: f64) -> f64 {
        self.model.decode_secs(batch_size, kv_tokens) / scale
    }

    /// The analytic sketch without corrections, at `scale`× model speed.
    fn raw_predict(&self, load: &LoadSample, replicas: usize, scale: f64) -> PerfEstimate {
        assert!(replicas > 0, "cannot predict for zero replicas");
        assert!(
            scale.is_finite() && scale > 0.0,
            "invalid perf scale {scale}"
        );
        let load = load.sanitized();
        match self.role {
            PoolRole::Colocated => self.raw_colocated(&load, replicas, scale),
            PoolRole::Prefill => self.raw_prefill(&load, replicas, scale),
            PoolRole::Decode => self.raw_decode(&load, replicas, scale),
        }
    }

    /// Colocated column: decode fixed point plus the prefill pass in TTFT.
    fn raw_colocated(&self, load: &LoadSample, replicas: usize, scale: f64) -> PerfEstimate {
        let prefill = self.prefill_secs(load.mean_input_tokens.ceil().max(1.0) as u64, scale);
        let Some(point) = self.decode_point(load, replicas, scale) else {
            return PerfEstimate {
                ttft_secs: prefill,
                tpot_secs: self.decode_secs(1, load.mean_input_tokens.ceil() as u64, scale),
                concurrency: 0.0,
                utilization: 0.0,
                feasible: true,
            };
        };
        PerfEstimate {
            ttft_secs: if point.feasible {
                prefill + point.wait_secs
            } else {
                INFEASIBLE_TTFT_SECS
            },
            tpot_secs: point.tpot_secs,
            concurrency: point.concurrency,
            utilization: point.utilization,
            feasible: point.feasible,
        }
    }

    /// Prefill-bound column: each replica is an M/M/1 queue of whole-prompt
    /// prefill passes. TPOT is reported as zero — a prefill pool emits only
    /// first tokens, so only the TTFT side of the SLA can bind on it.
    fn raw_prefill(&self, load: &LoadSample, replicas: usize, scale: f64) -> PerfEstimate {
        let lambda = load.request_rate / replicas as f64;
        let service = self.prefill_secs(load.mean_input_tokens.ceil().max(1.0) as u64, scale);
        if lambda <= 0.0 {
            return PerfEstimate {
                ttft_secs: service,
                tpot_secs: 0.0,
                concurrency: 0.0,
                utilization: 0.0,
                feasible: true,
            };
        }
        let utilization = lambda * service;
        let feasible = utilization < 1.0;
        let ttft_secs = if feasible {
            service + utilization / (1.0 - utilization).max(1e-3) * service
        } else {
            INFEASIBLE_TTFT_SECS
        };
        PerfEstimate {
            ttft_secs,
            tpot_secs: 0.0,
            concurrency: utilization.min(1.0),
            utilization,
            feasible,
        }
    }

    /// Decode-bound column: the decode fixed point alone. TTFT is reported
    /// as zero — first tokens come from the prefill pool, so only the TPOT
    /// side of the SLA (and raw feasibility) can bind on a decode pool.
    fn raw_decode(&self, load: &LoadSample, replicas: usize, scale: f64) -> PerfEstimate {
        let Some(point) = self.decode_point(load, replicas, scale) else {
            return PerfEstimate {
                ttft_secs: 0.0,
                tpot_secs: self.decode_secs(1, load.mean_input_tokens.ceil() as u64, scale),
                concurrency: 0.0,
                utilization: 0.0,
                feasible: true,
            };
        };
        PerfEstimate {
            ttft_secs: 0.0,
            tpot_secs: point.tpot_secs,
            concurrency: point.concurrency,
            utilization: point.utilization,
            feasible: point.feasible,
        }
    }

    /// Shared decode-side queueing sketch, or `None` when the load offers
    /// no decode work at all.
    fn decode_point(&self, load: &LoadSample, replicas: usize, scale: f64) -> Option<DecodePoint> {
        let lambda = load.request_rate / replicas as f64;
        let l_in = load.mean_input_tokens;
        let l_out = load.mean_output_tokens;
        if lambda <= 0.0 || l_out <= 0.0 {
            return None;
        }
        let capacity = self.model.kv_capacity_tokens() as f64;
        // A request's mean resident KV footprint while decoding is its
        // prompt plus half its output; its admission-safe footprint (what
        // the Past-Future scheduler budgets for) is the full total.
        let mean_resident = l_in + l_out / 2.0;
        let n_max = (capacity / load.mean_total_tokens().max(1.0))
            .max(1.0)
            .floor();
        // Little's law fixed point: concurrency -> step time -> service
        // time -> concurrency. Damped; converges in a handful of rounds
        // because decode_secs is monotone and near-affine in both args.
        let mut n = 1.0f64;
        for _ in 0..32 {
            let batch = n.ceil().max(1.0) as u64;
            let kv = (n * mean_resident).ceil() as u64;
            let t_step = self.decode_secs(batch, kv, scale);
            let service = l_out * t_step;
            let target = (lambda * service).max(1e-9).min(4.0 * n_max);
            n = 0.5 * n + 0.5 * target;
        }
        let required = n;
        let n_eff = required.min(n_max);
        let batch_eff = n_eff.ceil().max(1.0) as u64;
        let tpot_secs = self.decode_secs(batch_eff, (n_eff * mean_resident).ceil() as u64, scale);
        // Throughput ceiling at the memory-bound batch size.
        let t_step_full = self.decode_secs(
            n_max.ceil() as u64,
            (n_max * mean_resident).ceil() as u64,
            scale,
        );
        let max_tokens_per_s = n_max / t_step_full;
        let utilization = (lambda * l_out) / max_tokens_per_s;
        let feasible = utilization < 1.0;
        let wait_secs = if feasible {
            // Machine-seconds a request occupies of the replica's decode
            // pipeline; M/M/1-shaped wait.
            let machine_secs = l_out * t_step_full / n_max;
            utilization / (1.0 - utilization).max(1e-3) * machine_secs
        } else {
            INFEASIBLE_TTFT_SECS
        };
        Some(DecodePoint {
            tpot_secs,
            concurrency: n_eff,
            utilization,
            wait_secs,
            feasible,
        })
    }
}

/// Decode-side operating point shared by the colocated and decode columns.
struct DecodePoint {
    tpot_secs: f64,
    concurrency: f64,
    utilization: f64,
    wait_secs: f64,
    feasible: bool,
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Linear toy latency model: decode grows with batch and KV, prefill
    /// with tokens; capacity 40k tokens.
    #[derive(Debug, Clone, Copy)]
    struct ToyModel;

    impl StepLatency for ToyModel {
        fn prefill_secs(&self, prompt_tokens: u64) -> f64 {
            0.01 + prompt_tokens as f64 * 1e-5
        }

        fn decode_secs(&self, batch_size: u64, kv_tokens: u64) -> f64 {
            0.01 + batch_size as f64 * 1e-4 + kv_tokens as f64 * 1e-7
        }

        fn kv_capacity_tokens(&self) -> u64 {
            40_000
        }
    }

    fn chat_load(rate: f64) -> LoadSample {
        LoadSample {
            request_rate: rate,
            mean_input_tokens: 200.0,
            mean_output_tokens: 400.0,
        }
    }

    #[test]
    fn idle_load_costs_one_prefill() {
        let interp = PerfInterpolator::new(ToyModel);
        let e = interp.predict(&LoadSample::ZERO, 2);
        assert!(e.feasible);
        assert_eq!(e.utilization, 0.0);
        assert!(e.ttft_secs < 0.02);
    }

    #[test]
    fn latency_improves_with_more_replicas() {
        let interp = PerfInterpolator::new(ToyModel);
        let load = chat_load(20.0);
        let one = interp.predict(&load, 1);
        let four = interp.predict(&load, 4);
        assert!(four.ttft_secs < one.ttft_secs);
        assert!(four.tpot_secs <= one.tpot_secs);
        assert!(four.utilization < one.utilization);
    }

    #[test]
    fn overload_is_flagged_infeasible() {
        let interp = PerfInterpolator::new(ToyModel);
        // Max decode throughput/replica ≈ n_max/t_step ≈ 66/0.0206 ≈ 3.2k
        // tok/s; 40 req/s × 400 tok = 16k tok/s ≫ that on one replica.
        let e = interp.predict(&chat_load(40.0), 1);
        assert!(!e.feasible);
        assert!(e.utilization >= 1.0);
        assert!(e.ttft_secs >= 1e5);
        // Spread over enough replicas it becomes feasible again.
        let e = interp.predict(&chat_load(40.0), 8);
        assert!(e.feasible, "utilization {}", e.utilization);
    }

    #[test]
    fn utilization_scales_linearly_with_rate() {
        let interp = PerfInterpolator::new(ToyModel);
        let lo = interp.predict(&chat_load(2.0), 2);
        let hi = interp.predict(&chat_load(4.0), 2);
        assert!((hi.utilization / lo.utilization - 2.0).abs() < 1e-6);
    }

    #[test]
    fn corrections_track_observed_bias() {
        let mut interp = PerfInterpolator::new(ToyModel);
        let load = chat_load(5.0);
        let raw = interp.predict(&load, 2);
        // The "real system" is consistently 2× slower than the sketch.
        for _ in 0..30 {
            interp.observe(&load, 2, raw.ttft_secs * 2.0, raw.tpot_secs * 2.0);
        }
        assert!((interp.ttft_correction() - 2.0).abs() < 0.05);
        assert!((interp.tpot_correction() - 2.0).abs() < 0.05);
        let corrected = interp.predict(&load, 2);
        assert!((corrected.ttft_secs / raw.ttft_secs - 2.0).abs() < 0.05);
    }

    #[test]
    fn corrections_stay_bounded() {
        let mut interp = PerfInterpolator::new(ToyModel);
        let load = chat_load(5.0);
        for _ in 0..100 {
            interp.observe(&load, 2, 1e9, 1e9);
        }
        assert!(interp.ttft_correction() <= 5.0);
        for _ in 0..100 {
            interp.observe(&load, 2, 1e-12, 1e-12);
        }
        assert!(interp.ttft_correction() >= 0.2);
    }

    #[test]
    fn saturated_observations_are_ignored() {
        let mut interp = PerfInterpolator::new(ToyModel);
        interp.observe(&chat_load(40.0), 1, 500.0, 50.0);
        assert_eq!(interp.ttft_correction(), 1.0);
        assert_eq!(interp.tpot_correction(), 1.0);
    }

    #[test]
    #[should_panic(expected = "zero replicas")]
    fn zero_replicas_panics() {
        let _ = PerfInterpolator::new(ToyModel).predict(&LoadSample::ZERO, 0);
    }

    #[test]
    fn perf_scale_speeds_up_the_sketch() {
        let interp = PerfInterpolator::new(ToyModel);
        let load = chat_load(10.0);
        let base = interp.predict(&load, 2);
        let fast = interp.predict_scaled(&load, 2, 2.0);
        let slow = interp.predict_scaled(&load, 2, 0.5);
        assert!(fast.ttft_secs < base.ttft_secs);
        assert!(fast.tpot_secs < base.tpot_secs);
        assert!(fast.utilization < base.utilization);
        assert!(slow.ttft_secs > base.ttft_secs);
        assert!(slow.utilization > base.utilization);
        // Scale 1.0 is the identity, bit for bit.
        let unit = interp.predict_scaled(&load, 2, 1.0);
        assert_eq!(unit, base);
    }

    #[test]
    #[should_panic(expected = "invalid perf scale")]
    fn non_finite_scale_panics() {
        let _ = PerfInterpolator::new(ToyModel).predict_scaled(&LoadSample::ZERO, 1, f64::NAN);
    }

    #[test]
    fn prefill_role_is_ttft_only() {
        let interp = PerfInterpolator::with_role(ToyModel, PoolRole::Prefill);
        let e = interp.predict(&chat_load(10.0), 1);
        assert!(e.feasible);
        assert_eq!(e.tpot_secs, 0.0, "prefill column must not bind on TPOT");
        assert!(e.ttft_secs > 0.0);
        // Saturate the prefill servers: service 0.012 s × 100 req/s > 1.
        let e = interp.predict(&chat_load(100.0), 1);
        assert!(!e.feasible);
        // More replicas restore feasibility and shrink TTFT.
        let few = interp.predict(&chat_load(40.0), 1);
        let many = interp.predict(&chat_load(40.0), 4);
        assert!(many.ttft_secs < few.ttft_secs);
    }

    #[test]
    fn decode_role_is_tpot_only() {
        let interp = PerfInterpolator::with_role(ToyModel, PoolRole::Decode);
        let e = interp.predict(&chat_load(20.0), 2);
        assert_eq!(e.ttft_secs, 0.0, "decode column must not bind on TTFT");
        assert!(e.tpot_secs > 0.0);
        // Same decode overload point as the colocated column.
        let overloaded = interp.predict(&chat_load(40.0), 1);
        assert!(!overloaded.feasible);
        assert!(overloaded.utilization >= 1.0);
    }

    #[test]
    fn role_corrections_only_touch_their_own_term() {
        let mut prefill = PerfInterpolator::with_role(ToyModel, PoolRole::Prefill);
        let load = chat_load(5.0);
        for _ in 0..20 {
            prefill.observe(&load, 2, 1.0, 1.0);
        }
        assert_eq!(
            prefill.tpot_correction(),
            1.0,
            "prefill pool must not learn TPOT corrections"
        );
        assert_ne!(prefill.ttft_correction(), 1.0);
        let mut decode = PerfInterpolator::with_role(ToyModel, PoolRole::Decode);
        for _ in 0..20 {
            decode.observe(&load, 2, 1.0, 1.0);
        }
        assert_eq!(
            decode.ttft_correction(),
            1.0,
            "decode pool must not learn TTFT corrections"
        );
        assert_ne!(decode.tpot_correction(), 1.0);
    }
}
