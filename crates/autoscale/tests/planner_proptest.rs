//! Property tests for the autoscaling planner: decisions stay inside the
//! policy bounds, hysteresis never whipsaws the fleet, and forecasts stay
//! finite and non-negative on arbitrary load histories.

use pf_autoscale::{
    AutoscaleConfig, AutoscalePlanner, LoadPredictor, LoadSample, PoolRole, PredictorKind,
    ScalingDecision, StepLatency,
};
use pf_metrics::{SimDuration, SimTime, SlaSpec};
use proptest::prelude::*;

/// Linear toy replica: one instance serves a few requests per second of
/// mid-sized chat traffic before TTFT degrades.
#[derive(Debug, Clone, Copy)]
struct ToyModel;

impl StepLatency for ToyModel {
    fn prefill_secs(&self, prompt_tokens: u64) -> f64 {
        0.02 + prompt_tokens as f64 * 1e-5
    }

    fn decode_secs(&self, batch_size: u64, kv_tokens: u64) -> f64 {
        0.02 + batch_size as f64 * 2e-4 + kv_tokens as f64 * 2e-6
    }

    fn kv_capacity_tokens(&self) -> u64 {
        8_000
    }
}

fn sla() -> SlaSpec {
    SlaSpec::new(SimDuration::from_secs(10), SimDuration::from_millis(1500))
}

/// Streams `rate` req/s (with matching completions) through the interval
/// ending at `end_s`, with the given mean lengths.
fn feed_interval(
    planner: &mut AutoscalePlanner<ToyModel>,
    end_s: u64,
    rate: usize,
    input_len: u32,
    output_len: u32,
) {
    let start_ms = (end_s - 10) * 1_000;
    let events = rate * 10;
    for i in 0..events {
        let at = SimTime::from_millis(start_ms + (i * 10_000 / events) as u64);
        planner.on_request_arrival(at, input_len);
        planner.on_request_finished(
            at,
            output_len,
            SimDuration::from_millis(400),
            SimDuration::from_millis(50),
        );
    }
}

/// One random load history: per-interval request rates plus mean lengths.
fn history_strategy() -> impl Strategy<Value = (Vec<usize>, u32, u32)> {
    (
        proptest::collection::vec(0usize..25, 3..20),
        16u32..1024,
        16u32..1024,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the load does, every decision's target stays inside the
    /// configured `[min, max]` replica bounds.
    #[test]
    fn plans_never_leave_policy_bounds(
        history in history_strategy(),
        min in 1usize..3,
        span in 0usize..4,
        kind_idx in 0usize..4,
    ) {
        let (rates, input_len, output_len) = history;
        let max = min + span;
        let kind = [
            PredictorKind::Constant,
            PredictorKind::ewma(),
            PredictorKind::holt(),
            PredictorKind::holt_winters(6),
        ][kind_idx];
        let config = AutoscaleConfig::bounded(min, max)
            .interval(SimDuration::from_secs(10))
            .warmup(SimDuration::from_secs(25))
            .predictor(kind);
        let mut planner = AutoscalePlanner::new(config, sla(), ToyModel);
        let mut current = min;
        for (i, &rate) in rates.iter().enumerate() {
            let end = (i as u64 + 1) * 10;
            feed_interval(&mut planner, end, rate, input_len, output_len);
            let outcome = planner.plan(SimTime::from_secs(end), current, 0);
            let target = outcome.decision.target_or(current);
            prop_assert!(
                (min..=max).contains(&target),
                "target {target} outside [{min}, {max}] on decision {:?}",
                outcome.decision
            );
            current = target;
        }
    }

    /// Hysteresis: the policy never releases a replica within the
    /// scale-down patience window of a scale-up — a burst that forced
    /// growth cannot be immediately second-guessed.
    #[test]
    fn hysteresis_never_flips_direction_within_cooldown(
        history in history_strategy(),
    ) {
        let (rates, input_len, output_len) = history;
        let config = AutoscaleConfig::bounded(1, 6)
            .interval(SimDuration::from_secs(10))
            .predictor(PredictorKind::ewma());
        let patience = config.policy.scale_down_patience as usize;
        let mut planner = AutoscalePlanner::new(config, sla(), ToyModel);
        let mut current = 1usize;
        // Planning rounds elapsed since the last scale-up (counting the
        // current round).
        let mut rounds_since_up = usize::MAX;
        for (i, &rate) in rates.iter().enumerate() {
            let end = (i as u64 + 1) * 10;
            feed_interval(&mut planner, end, rate, input_len, output_len);
            let outcome = planner.plan(SimTime::from_secs(end), current, 0);
            rounds_since_up = rounds_since_up.saturating_add(1);
            match outcome.decision {
                ScalingDecision::ScaleUp { target } => {
                    prop_assert!(target > current);
                    rounds_since_up = 0;
                }
                ScalingDecision::ScaleDown { target } => {
                    prop_assert!(target < current);
                    prop_assert!(
                        rounds_since_up >= patience,
                        "scale-down only {rounds_since_up} rounds after a scale-up \
                         (patience {patience})"
                    );
                }
                ScalingDecision::Hold => {}
            }
            current = outcome.decision.target_or(current);
        }
    }

    /// Holt-Winters forecasts (every horizon step) stay finite and
    /// non-negative for arbitrary sampled load windows.
    #[test]
    fn holt_winters_forecasts_stay_finite(
        samples in proptest::collection::vec(
            (0.0f64..1e6, 0.0f64..1e5, 0.0f64..1e5),
            1..60,
        ),
        season in 0usize..8,
        horizon in 1usize..8,
    ) {
        let mut predictor = LoadPredictor::new(PredictorKind::holt_winters(season));
        for (rate, input, output) in samples {
            predictor.observe(LoadSample {
                request_rate: rate,
                mean_input_tokens: input,
                mean_output_tokens: output,
            });
        }
        for step in 1..=horizon {
            let f = predictor.forecast_ahead(step);
            for (name, v) in [
                ("rate", f.request_rate),
                ("input", f.mean_input_tokens),
                ("output", f.mean_output_tokens),
            ] {
                prop_assert!(v.is_finite() && v >= 0.0, "{name} forecast {v} at step {step}");
            }
        }
        let max = predictor.forecast_horizon_max(horizon);
        prop_assert!(max.request_rate.is_finite() && max.request_rate >= 0.0);
    }

    /// Role-specific estimates respect their contracts on arbitrary loads:
    /// the prefill column never reports a TPOT and the decode column never
    /// reports a TTFT, and both stay finite.
    #[test]
    fn pool_role_estimates_respect_contracts(
        rate in 0.0f64..100.0,
        input in 1.0f64..4000.0,
        output in 1.0f64..2000.0,
        replicas in 1usize..8,
    ) {
        let load = LoadSample {
            request_rate: rate,
            mean_input_tokens: input,
            mean_output_tokens: output,
        };
        let prefill = pf_autoscale::PerfInterpolator::with_role(ToyModel, PoolRole::Prefill)
            .predict(&load, replicas);
        prop_assert_eq!(prefill.tpot_secs, 0.0);
        prop_assert!(prefill.ttft_secs.is_finite() && prefill.ttft_secs >= 0.0);
        let decode = pf_autoscale::PerfInterpolator::with_role(ToyModel, PoolRole::Decode)
            .predict(&load, replicas);
        prop_assert_eq!(decode.ttft_secs, 0.0);
        prop_assert!(decode.tpot_secs.is_finite() && decode.tpot_secs >= 0.0);
    }
}
